// Failure-injection and fuzz-ish robustness tests: random bytes and
// adversarial structures must produce clean Status errors, never crashes
// or hangs.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/env.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "twig/twig.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

class XmlFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(XmlFuzzProperty, RandomBytesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1337 + 7);
  // Byte soup biased toward XML-ish characters so the parser gets past the
  // first branch often.
  const char alphabet[] = "<>/=\"' abcdeXML?!-[]&;\t\n";
  for (int trial = 0; trial < 50; ++trial) {
    std::string input;
    size_t length = rng.Uniform(200);
    for (size_t i = 0; i < length; ++i) {
      if (rng.Bernoulli(0.9)) {
        input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
      } else {
        input.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    Result<Document> result = ParseXmlString(input);
    if (result.ok()) {
      // Whatever parsed must be a valid tree and round-trippable.
      EXPECT_TRUE(result->Validate().ok());
      EXPECT_TRUE(ParseXmlString(WriteXmlString(*result)).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzProperty, testing::Range(0, 20));

class TwigFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(TwigFuzzProperty, RandomTwigTextNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 3);
  const char alphabet[] = "ab(),x1 ";
  LabelDict dict;
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t length = rng.Uniform(40);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<Twig> twig = Twig::Parse(input, &dict);
    if (twig.ok()) {
      // Parsed twigs must round-trip through their canonical code.
      Result<Twig> again = Twig::FromCanonicalCode(twig->CanonicalCode());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->CanonicalCode(), twig->CanonicalCode());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigFuzzProperty, testing::Range(0, 20));

class XPathFuzzProperty : public testing::TestWithParam<int> {};

TEST_P(XPathFuzzProperty, RandomXPathTextNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 13);
  const char alphabet[] = "ab/[]@*12 .";
  LabelDict dict;
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t length = rng.Uniform(40);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<Twig> twig = CompileXPath(input, &dict);
    if (twig.ok()) {
      EXPECT_GE(twig->size(), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathFuzzProperty, testing::Range(0, 20));

TEST(DeepNestingTest, ParserHandlesDeepDocuments) {
  // 2000-deep chain: the parser is iterative, so this must parse cleanly.
  const int depth = 2000;
  std::string xml;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  Result<Document> doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), static_cast<size_t>(depth));
  EXPECT_TRUE(doc->Validate().ok());
}

TEST(DeepNestingTest, SummaryHandlesPathPatternsOfMaxLevel) {
  const int depth = 500;
  std::string xml;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  Result<Document> doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  // A single-label chain: level-k pattern is the k-path, count depth-k+1.
  LatticeSummary summary(3);
  Twig path3;
  int node = path3.AddNode(doc->Label(0), -1);
  node = path3.AddNode(doc->Label(0), node);
  path3.AddNode(doc->Label(0), node);
  ASSERT_TRUE(summary.Insert(path3, depth - 2).ok());
  EXPECT_EQ(*summary.Lookup(path3), static_cast<uint64_t>(depth - 2));
}

TEST(MalformedSummaryTest, TruncatedFileRejected) {
  std::string path = testing::TempDir() + "/tl_truncated_summary.txt";
  {
    std::ofstream out(path);
    out << "TLSUMMARY v1\n4 4\n5\n10 0\n";  // claims 5 entries, has 1
  }
  Result<LatticeSummary> result = LatticeSummary::LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(MalformedSummaryTest, GarbageCodeRejected) {
  std::string path = testing::TempDir() + "/tl_garbage_summary.txt";
  {
    std::ofstream out(path);
    out << "TLSUMMARY v1\n4 4\n1\n10 not-a-code\n";
  }
  Result<LatticeSummary> result = LatticeSummary::LoadFromFile(path);
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Summary-file fuzz suite: a damaged summary file — truncated anywhere,
// or with any single bit flipped — must load to a clean Status (ok with
// salvage, or a typed error), never crash, hang, or silently return wrong
// counts while claiming to be undamaged.

/// Reference v2 summary (with embedded dict) whose bytes the fuzz cases
/// mutate, plus the original counts to compare salvage results against.
struct SummaryFuzzFixture {
  LabelDict dict;
  LatticeSummary summary{3};
  std::string bytes;

  SummaryFuzzFixture() { Init(); }

  // gtest fatal assertions are only usable in void functions, so the
  // constructor delegates.
  void Init() {
    auto insert = [&](const std::string& text, uint64_t count) {
      Result<Twig> twig = Twig::Parse(text, &dict);
      ASSERT_TRUE(twig.ok());
      ASSERT_TRUE(summary.Insert(*twig, count).ok());
    };
    insert("a", 100);
    insert("b", 60);
    insert("c", 30);
    insert("a(b)", 40);
    insert("a(c)", 20);
    insert("a(b,c)", 10);
    insert("a(b(c))", 5);
    summary.set_complete_through_level(3);
    std::string path = testing::TempDir() + "/tl_fuzz_reference.tls";
    ASSERT_TRUE(
        SaveSummaryV2(summary, &dict, Env::Default(), path).ok());
    ASSERT_TRUE(ReadFileToString(Env::Default(), path, &bytes).ok());
  }

  /// Loads `mutated` and enforces the fuzz contract. `original` is the
  /// undamaged summary for comparing untouched loads.
  void CheckMutation(const std::string& mutated,
                     const std::string& name) const {
    std::string path = testing::TempDir() + "/tl_fuzz_case.tls";
    ASSERT_TRUE(WriteFileAtomic(Env::Default(), path, mutated).ok());
    Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
    if (!loaded.ok()) {
      // Clean typed failure is always acceptable.
      EXPECT_NE(loaded.status().code(), StatusCode::kOk) << name;
      return;
    }
    const LatticeSummary& got = loaded->summary;
    EXPECT_LE(got.complete_through_level(), got.max_level()) << name;
    if (!loaded->salvaged) {
      // Checksums intact: counts must be exactly the originals.
      ASSERT_EQ(got.NumPatterns(), summary.NumPatterns()) << name;
      for (int level = 1; level <= summary.max_level(); ++level) {
        for (const std::string& code : summary.PatternsAtLevel(level)) {
          ASSERT_TRUE(got.LookupCode(code).has_value()) << name;
          EXPECT_EQ(*got.LookupCode(code), *summary.LookupCode(code))
              << name;
        }
      }
    } else {
      // Salvage: whatever survived must be a subset with original counts.
      EXPECT_FALSE(loaded->corruption_detail.empty()) << name;
      for (int level = 1; level <= got.max_level(); ++level) {
        for (const std::string& code : got.PatternsAtLevel(level)) {
          ASSERT_TRUE(summary.LookupCode(code).has_value()) << name;
          EXPECT_EQ(*got.LookupCode(code), *summary.LookupCode(code))
              << name;
        }
      }
    }
    // Verify must agree with the loader about integrity.
    Result<VerifyReport> report = VerifySummaryFile(Env::Default(), path);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_EQ(report->intact, !loaded->salvaged) << name;
  }
};

TEST(SummaryFileFuzz, EveryTruncationPointLoadsCleanly) {
  SummaryFuzzFixture fx;
  for (size_t cut = 0; cut < fx.bytes.size(); ++cut) {
    fx.CheckMutation(fx.bytes.substr(0, cut),
                     "truncated to " + std::to_string(cut) + " bytes");
  }
}

TEST(SummaryFileFuzz, EverySingleBitFlipIsDetectedOrHarmless) {
  SummaryFuzzFixture fx;
  for (size_t i = 0; i < fx.bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = fx.bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      fx.CheckMutation(mutated, "bit " + std::to_string(bit) + " of byte " +
                                    std::to_string(i));
    }
  }
}

TEST(SummaryFileFuzz, RandomMultiByteCorruptionLoadsCleanly) {
  SummaryFuzzFixture fx;
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = fx.bytes;
    size_t flips = 1 + rng.Uniform(8);
    for (size_t f = 0; f < flips; ++f) {
      size_t at = rng.Uniform(mutated.size());
      mutated[at] = static_cast<char>(rng.Uniform(256));
    }
    fx.CheckMutation(mutated, "random corruption trial " +
                                  std::to_string(trial));
  }
}

TEST(SummaryFileFuzz, V1RandomTruncationNeverCrashes) {
  SummaryFuzzFixture fx;
  std::string path = testing::TempDir() + "/tl_fuzz_v1.txt";
  ASSERT_TRUE(fx.summary.SaveToFileV1(path).ok());
  std::string v1_bytes;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &v1_bytes).ok());
  for (size_t cut = 0; cut < v1_bytes.size(); ++cut) {
    std::string cut_path = testing::TempDir() + "/tl_fuzz_v1_cut.txt";
    ASSERT_TRUE(WriteFileAtomic(Env::Default(), cut_path,
                                v1_bytes.substr(0, cut))
                    .ok());
    Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(cut_path);
    // v1 has no checksums: a truncated file either still parses as a
    // prefix-consistent summary or fails cleanly; both are acceptable,
    // crashing or hanging is not.
    if (loaded.ok()) {
      EXPECT_LE(loaded->complete_through_level(), loaded->max_level());
    }
  }
}

TEST(SummaryFileFuzz, CrossVersionLoadsReportTheirFormat) {
  SummaryFuzzFixture fx;
  std::string v1_path = testing::TempDir() + "/tl_cross_v1.txt";
  std::string v2_path = testing::TempDir() + "/tl_cross_v2.tls";
  ASSERT_TRUE(fx.summary.SaveToFileV1(v1_path).ok());
  ASSERT_TRUE(fx.summary.SaveToFile(v2_path).ok());

  Result<LoadedSummary> v1 = LoadSummary(Env::Default(), v1_path);
  Result<LoadedSummary> v2 = LoadSummary(Env::Default(), v2_path);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->format_version, 1);
  EXPECT_EQ(v2->format_version, 2);
  ASSERT_EQ(v1->summary.NumPatterns(), v2->summary.NumPatterns());
  for (int level = 1; level <= fx.summary.max_level(); ++level) {
    for (const std::string& code : fx.summary.PatternsAtLevel(level)) {
      EXPECT_EQ(*v1->summary.LookupCode(code), *v2->summary.LookupCode(code));
    }
  }
}

}  // namespace
}  // namespace treelattice
