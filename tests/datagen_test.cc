#include <string>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/random_tree.h"
#include "xml/writer.h"

namespace treelattice {
namespace {

TEST(RandomTreeTest, RespectsNodeBudget) {
  RandomTreeOptions options;
  options.num_nodes = 500;
  Document doc = GenerateRandomTree(options);
  EXPECT_LE(doc.NumNodes(), 500u);
  EXPECT_GE(doc.NumNodes(), 1u);
  EXPECT_TRUE(doc.Validate().ok());
}

TEST(RandomTreeTest, DeterministicForSeed) {
  RandomTreeOptions options;
  options.seed = 1234;
  options.num_nodes = 300;
  Document a = GenerateRandomTree(options);
  Document b = GenerateRandomTree(options);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(a.NumNodes()); ++n) {
    EXPECT_EQ(a.Label(n), b.Label(n));
    EXPECT_EQ(a.Parent(n), b.Parent(n));
  }
}

TEST(RandomTreeTest, RespectsMaxDepth) {
  RandomTreeOptions options;
  options.num_nodes = 2000;
  options.max_depth = 3;
  Document doc = GenerateRandomTree(options);
  for (NodeId n = 0; n < static_cast<NodeId>(doc.NumNodes()); ++n) {
    int depth = 0;
    for (NodeId p = n; doc.Parent(p) != kInvalidNode; p = doc.Parent(p)) {
      ++depth;
    }
    EXPECT_LE(depth, 4);  // children of depth-3 nodes are never expanded
  }
}

class DatasetGeneratorTest : public testing::TestWithParam<std::string> {};

TEST_P(DatasetGeneratorTest, GeneratesValidDocument) {
  DatasetOptions options;
  options.scale = 50;
  auto doc = GenerateDataset(GetParam(), options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Validate().ok());
  EXPECT_GT(doc->NumNodes(), 100u);
  // Label alphabets are modest, as in Table 2 (tens of labels).
  EXPECT_LT(doc->dict().size(), 100u);
  EXPECT_GT(doc->dict().size(), 10u);
}

TEST_P(DatasetGeneratorTest, DeterministicForSeed) {
  DatasetOptions options;
  options.scale = 20;
  options.seed = 99;
  auto a = GenerateDataset(GetParam(), options);
  auto b = GenerateDataset(GetParam(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(a->NumNodes()); ++n) {
    EXPECT_EQ(a->Label(n), b->Label(n));
    EXPECT_EQ(a->Parent(n), b->Parent(n));
  }
}

TEST_P(DatasetGeneratorTest, DifferentSeedsDiffer) {
  DatasetOptions a_options;
  a_options.scale = 50;
  a_options.seed = 1;
  DatasetOptions b_options = a_options;
  b_options.seed = 2;
  auto a = GenerateDataset(GetParam(), a_options);
  auto b = GenerateDataset(GetParam(), b_options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->NumNodes(), b->NumNodes());
}

TEST_P(DatasetGeneratorTest, ScaleGrowsDocument) {
  DatasetOptions small;
  small.scale = 20;
  DatasetOptions large;
  large.scale = 200;
  auto a = GenerateDataset(GetParam(), small);
  auto b = GenerateDataset(GetParam(), large);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->NumNodes(), a->NumNodes() * 5);
}

TEST_P(DatasetGeneratorTest, SerializableAsXml) {
  DatasetOptions options;
  options.scale = 10;
  auto doc = GenerateDataset(GetParam(), options);
  ASSERT_TRUE(doc.ok());
  std::string xml = WriteXmlString(*doc);
  EXPECT_GT(xml.size(), 100u);
  EXPECT_EQ(xml.front(), '<');
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetGeneratorTest,
                         testing::Values("nasa", "imdb", "psd", "xmark"));

TEST(DatasetRegistryTest, UnknownNameRejected) {
  DatasetOptions options;
  auto result = GenerateDataset("bogus", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetRegistryTest, NamesAndScales) {
  auto names = DatasetNames();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    EXPECT_GT(DefaultScale(name), 0);
    DatasetOptions options;
    options.scale = 1;
    EXPECT_TRUE(GenerateDataset(name, options).ok());
  }
  EXPECT_EQ(DefaultScale("unknown"), 1000);
}

TEST(XmarkTraitTest, HasHighFanoutVariance) {
  DatasetOptions options;
  options.scale = 800;
  Document doc = GenerateXmark(options);
  // Find the label with the highest child-count variance among parents of
  // 'bidder' nodes: open_auction children counts should vary wildly.
  LabelId open_auction = doc.dict().Find("open_auction");
  ASSERT_NE(open_auction, kInvalidLabel);
  double sum = 0, sum_sq = 0, n = 0;
  for (NodeId node = 0; node < static_cast<NodeId>(doc.NumNodes()); ++node) {
    if (doc.Label(node) != open_auction) continue;
    double c = doc.NumChildren(node);
    sum += c;
    sum_sq += c * c;
    n += 1;
  }
  ASSERT_GT(n, 10);
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_GT(variance, 4.0);  // far from count-stable
}

TEST(ImdbTraitTest, PlantsCrossBranchCorrelation) {
  DatasetOptions options;
  options.scale = 600;
  Document doc = GenerateImdb(options);
  LabelId movie = doc.dict().Find("movie");
  LabelId business = doc.dict().Find("business");
  LabelId awards = doc.dict().Find("awards");
  ASSERT_NE(business, kInvalidLabel);
  ASSERT_NE(awards, kInvalidLabel);
  int movies = 0, with_business = 0, with_awards = 0, with_both = 0;
  for (NodeId node = 0; node < static_cast<NodeId>(doc.NumNodes()); ++node) {
    if (doc.Label(node) != movie) continue;
    ++movies;
    bool has_business = false, has_awards = false;
    for (NodeId c = doc.FirstChild(node); c != kInvalidNode;
         c = doc.NextSibling(c)) {
      if (doc.Label(c) == business) has_business = true;
      if (doc.Label(c) == awards) has_awards = true;
    }
    with_business += has_business;
    with_awards += has_awards;
    with_both += has_business && has_awards;
  }
  ASSERT_GT(movies, 100);
  // P(both) should be far above P(business) * P(awards): positive
  // correlation that violates conditional independence.
  double p_business = double(with_business) / movies;
  double p_awards = double(with_awards) / movies;
  double p_both = double(with_both) / movies;
  EXPECT_GT(p_both, 1.5 * p_business * p_awards);
}

}  // namespace
}  // namespace treelattice
