#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/exact_estimator.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/metrics.h"

namespace treelattice {
namespace {

TEST(MetricsTest, SanityBoundFloorsAtTen) {
  EXPECT_DOUBLE_EQ(SanityBound({1, 2, 3}), 10.0);
  EXPECT_DOUBLE_EQ(SanityBound({}), 10.0);
}

TEST(MetricsTest, SanityBoundUsesTenthPercentile) {
  std::vector<double> counts;
  for (int i = 1; i <= 100; ++i) counts.push_back(i * 100.0);
  double sanity = SanityBound(counts);
  EXPECT_GT(sanity, 100.0);
  EXPECT_LT(sanity, 2000.0);
}

TEST(MetricsTest, RelativeErrorUsesSanityForSmallCounts) {
  // true=2, est=4, sanity=10: |2-4|/10 = 20%.
  EXPECT_DOUBLE_EQ(RelativeErrorPct(2, 4, 10), 20.0);
  // true=100, est=50, sanity=10: |100-50|/100 = 50%.
  EXPECT_DOUBLE_EQ(RelativeErrorPct(100, 50, 10), 50.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPct(0, 0, 0), 0.0);
}

TEST(MetricsTest, MeanAndPercentile) {
  std::vector<double> values = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(MetricsTest, PercentileSingleElement) {
  // One element answers every percentile.
  for (double pct : {0.0, 10.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({7.5}, pct), 7.5) << pct;
  }
}

TEST(MetricsTest, PercentileClampsOutOfRangePct) {
  std::vector<double> values = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(values, -10.0), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(Percentile(values, 250.0), 4.0);   // clamped to max
}

TEST(MetricsTest, PercentileNanPropagates) {
  std::vector<double> values = {4, 1, 3, 2};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Percentile(values, nan)));
  EXPECT_TRUE(std::isnan(Percentile({1.0, nan, 3.0}, 50.0)));
}

TEST(MetricsTest, ErrorCdfIsMonotone) {
  auto cdf = ErrorCdf({5.0, 1.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].error_pct, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_pct, 100.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].error_pct, cdf[i - 1].error_pct);
    EXPECT_GT(cdf[i].cumulative_pct, cdf[i - 1].cumulative_pct);
  }
  EXPECT_TRUE(ErrorCdf({}).empty());
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Column 2 aligned: "value" and "1" start at the same offset.
  size_t header_pos = out.find("value");
  size_t row_pos = out.find("1");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(ExperimentTest, PrepareDatasetBuildsEverything) {
  ExperimentOptions options;
  options.scale = 30;
  options.lattice_level = 3;
  options.treesketch_budget_bytes = 4096;
  auto bundle = PrepareDataset("psd", options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_GT(bundle->doc.NumNodes(), 100u);
  EXPECT_GT(bundle->summary.NumPatterns(), 10u);
  EXPECT_GT(bundle->sketch.NumClusters(), 0u);
  EXPECT_GT(bundle->build_stats.patterns_per_level[1], 0u);
}

TEST(ExperimentTest, PrepareDatasetSkipsSketchWhenAsked) {
  ExperimentOptions options;
  options.scale = 20;
  auto bundle = PrepareDataset("psd", options, /*build_sketch=*/false);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->sketch.NumClusters(), 0u);
}

TEST(ExperimentTest, WorkloadAndRunEstimator) {
  ExperimentOptions options;
  options.scale = 40;
  options.lattice_level = 4;
  options.queries_per_size = 15;
  auto bundle = PrepareDataset("psd", options, /*build_sketch=*/false);
  ASSERT_TRUE(bundle.ok());
  MatchCounter counter(bundle->doc);
  auto workload = PrepareWorkload(bundle->doc, counter, 5, options);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_GT(workload->queries.size(), 3u);
  EXPECT_EQ(workload->queries.size(), workload->true_counts.size());
  EXPECT_GE(workload->sanity, 10.0);

  // The exact estimator must score zero error.
  ExactEstimator exact(bundle->doc);
  auto exact_run = RunEstimator(exact, *workload);
  ASSERT_TRUE(exact_run.ok());
  EXPECT_DOUBLE_EQ(exact_run->avg_error_pct, 0.0);

  // The recursive estimator runs and produces finite errors.
  RecursiveDecompositionEstimator recursive(&bundle->summary);
  auto run = RunEstimator(recursive, *workload);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->errors.size(), workload->queries.size());
  EXPECT_GE(run->avg_time_ms, 0.0);
}

}  // namespace
}  // namespace treelattice
