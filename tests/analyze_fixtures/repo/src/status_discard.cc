// Fixture for tl_analyze's status-discard check. Uses the real
// util/status.h (the fixture compile command adds the project src to the
// include path), so the fixture exercises exactly the shipped types.
#include "util/status.h"

using treelattice::Status;

namespace fixture {

Status MayFail() { return Status::IOError("fixture failure"); }

void Discards() {
  MayFail();  // ANALYZE-EXPECT[status-discard]
  (void)MayFail();  // ANALYZE-EXPECT[status-discard]
  MayFail();  // tl-analyze: allow(status-discard) -- fixture suppression
  treelattice::IgnoreStatus(MayFail(), "fixture: sanctioned discard");
  Status handled = MayFail();
  if (!handled.ok()) {
    return;
  }
}

}  // namespace fixture
