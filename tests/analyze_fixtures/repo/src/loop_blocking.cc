// Fixture for tl_analyze's loop-blocking check: call-graph reachability
// from TL_EVENT_LOOP roots to blocking calls, the MSG_DONTWAIT exemption,
// and call-site suppressions.
#include <sys/socket.h>
#include <unistd.h>

#include "util/analysis_annotations.h"

namespace fixture {

void DeepBlockingRead(int fd) {
  char buf[8];
  (void)!read(fd, buf, sizeof(buf));  // ANALYZE-EXPECT[loop-blocking]
}

TL_EVENT_LOOP void LoopReachesBlocking(int fd) { DeepBlockingRead(fd); }

TL_EVENT_LOOP void LoopNonBlockingIo(int fd) {
  char buf[8];
  // MSG_DONTWAIT cannot block: exempt, no finding.
  (void)!recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
}

TL_EVENT_LOOP void LoopSuppressed(int fd) {
  char buf[8];
  // tl-analyze: allow(loop-blocking) -- fixture: fd is O_NONBLOCK here
  (void)!read(fd, buf, sizeof(buf));
}

}  // namespace fixture
