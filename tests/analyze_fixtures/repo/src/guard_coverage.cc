// Fixture for tl_analyze's guard-coverage check: a class owning a
// std::mutex must annotate (or explicitly waive) every mutable field.
#include <atomic>
#include <mutex>

#include "util/thread_annotations.h"

namespace fixture {

class PartiallyGuarded {
 public:
  int Value();

 private:
  std::mutex mu_;
  int unguarded_ = 0;  // ANALYZE-EXPECT[guard-coverage]
  int guarded_ TL_GUARDED_BY(mu_) = 0;
  const int limit_ = 3;            // const: exempt
  std::atomic<int> tally_{0};      // atomic: exempt
  int waived_ = 0;  // tl-analyze: allow(guard-coverage) -- fixture waiver
};

// tl-analyze: allow(guard-coverage) -- fixture: class-level waiver
class ClassLevelWaiver {
 public:
  int Value();

 private:
  std::mutex mu_;
  int anything_ = 0;
};

class NoMutexNoRules {
 public:
  int Value();

 private:
  int plain_ = 0;  // no mutex in the class: not checked
};

}  // namespace fixture
