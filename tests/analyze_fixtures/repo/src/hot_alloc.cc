// Fixture for tl_analyze's hot-alloc check: call-graph reachability from
// TL_HOT roots to allocating operations, TL_ALLOC_OK stoppers, line
// suppressions, and the Status-factory error-path exemption.
#include <string>
#include <vector>

#include "util/analysis_annotations.h"
#include "util/status.h"

namespace fixture {

std::vector<int>& SharedVector();

void GrowsVector() {
  SharedVector().push_back(1);  // ANALYZE-EXPECT[hot-alloc]
}

TL_HOT void HotReachesAllocation() { GrowsVector(); }

TL_HOT void HotSuppressedAllocation() {
  std::string scratch;
  // tl-analyze: allow(hot-alloc) -- fixture: amortized growth stand-in
  scratch.append("x");
  (void)scratch.size();
}

// The stopper: TL_HOT roots may call this without findings inside it.
TL_ALLOC_OK int* ColdSetup() { return new int(7); }

TL_HOT void HotStopsAtAllocOk() { delete ColdSetup(); }

// Error-path exemption: building a Status message allocates by design and
// must NOT be reported from a hot root.
TL_HOT treelattice::Status HotErrorPath(bool fail) {
  if (fail) {
    return treelattice::Status::InvalidArgument(
        "fixture error " + std::to_string(42));
  }
  return treelattice::Status::OK();
}

}  // namespace fixture
