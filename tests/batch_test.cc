// Batched estimation suite (DESIGN.md §14): the monotonic arena, the
// grouped summary probe, BatchEstimator's bit-identity with the
// sequential path (including under governed budgets and cancellation),
// the batch-aware estimate cache, the batch request-line protocol, and
// the Server's whole-batch admission/shed semantics.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_estimator.h"
#include "core/estimate_scratch.h"
#include "core/recursive_estimator.h"
#include "io/env.h"
#include "serve/estimate_cache.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "twig/twig.h"
#include "util/arena.h"
#include "util/deadline.h"
#include "util/hash.h"
#include "util/json.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace {

/// A summary complete through level 2 with a wide star under `a`, shared
/// by every estimator test: small enough to reason about, branchy enough
/// that size-3+ queries actually recurse.
void FillTestSummary(LatticeSummary* summary, LabelDict* dict) {
  auto insert = [&](const std::string& text, uint64_t count) {
    Result<Twig> twig = Twig::Parse(text, dict);
    ASSERT_TRUE(twig.ok()) << twig.status().ToString();
    ASSERT_TRUE(summary->Insert(*twig, count).ok());
  };
  insert("a", 10);
  insert("b", 8);
  insert("c", 6);
  insert("a(b)", 5);
  insert("b(c)", 4);
  insert("a(c)", 3);
  for (int i = 0; i < 12; ++i) {
    const std::string child = "t" + std::to_string(i);
    insert(child, 20 + static_cast<uint64_t>(i));
    insert("a(" + child + ")", 3 + static_cast<uint64_t>(i));
  }
  summary->set_complete_through_level(2);
}

std::vector<Twig> ParseAll(const std::vector<std::string>& texts,
                           LabelDict* dict) {
  std::vector<Twig> twigs;
  for (const std::string& text : texts) {
    Result<Twig> twig = Twig::Parse(text, dict);
    EXPECT_TRUE(twig.ok()) << text << ": " << twig.status().ToString();
    twigs.push_back(std::move(*twig));
  }
  return twigs;
}

TEST(MonotonicArenaTest, BumpAllocatesAlignedAndResetReuses) {
  MonotonicArena arena;
  EXPECT_EQ(arena.CapacityBytes(), 0u);

  char* byte = arena.AllocateArray<char>(3);
  ASSERT_NE(byte, nullptr);
  uint64_t* words = arena.AllocateArray<uint64_t>(7);
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(words) % alignof(uint64_t), 0u);
  for (size_t i = 0; i < 7; ++i) words[i] = i;  // must be writable
  double* reals = arena.AllocateArray<double>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(reals) % alignof(double), 0u);

  const size_t capacity = arena.CapacityBytes();
  EXPECT_GT(capacity, 0u);
  arena.Reset();
  // Same allocations after Reset reuse the retained blocks: no growth.
  arena.AllocateArray<char>(3);
  arena.AllocateArray<uint64_t>(7);
  arena.AllocateArray<double>(5);
  EXPECT_EQ(arena.CapacityBytes(), capacity);
}

TEST(MonotonicArenaTest, OversizedAllocationGetsItsOwnBlock) {
  MonotonicArena arena;
  // Far beyond the 64 KiB block: the arena must mint a dedicated block
  // and the array must be fully usable.
  const size_t n = 40000;
  uint64_t* big = arena.AllocateArray<uint64_t>(n);
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[n - 1] = 2;
  EXPECT_EQ(big[0] + big[n - 1], 3u);
  EXPECT_GE(arena.CapacityBytes(), n * sizeof(uint64_t));

  const size_t capacity = arena.CapacityBytes();
  arena.Reset();
  uint64_t* again = arena.AllocateArray<uint64_t>(n);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.CapacityBytes(), capacity);  // big block was retained
}

TEST(MonotonicArenaTest, ZeroSizedAllocationIsSafe) {
  MonotonicArena arena;
  // Must not fault on the empty arena's null bump pointer.
  (void)arena.AllocateArray<int>(0);
  (void)arena.Allocate(0, 1);
}

TEST(LookupBatchTest, AgreesWithSingleLookupsInAnyOrder) {
  LabelDict dict;
  LatticeSummary summary(2);
  FillTestSummary(&summary, &dict);

  std::vector<Twig> probes = ParseAll(
      {"a(b)", "nosuch", "b(c)", "a(t3)", "c", "a(b,c)", "a(t3)", "t11"},
      &dict);
  std::vector<LatticeSummary::ProbeKey> keys;
  for (const Twig& twig : probes) {
    keys.push_back({twig.CanonicalHash(), twig.CanonicalCode()});
  }
  std::vector<uint32_t> order(keys.size());
  std::vector<LatticeSummary::ProbeResult> results(keys.size());
  summary.LookupBatch(keys.data(), keys.size(), order.data(), results.data());

  for (size_t i = 0; i < probes.size(); ++i) {
    std::optional<uint64_t> single = summary.Lookup(probes[i]);
    EXPECT_EQ(results[i].found, single.has_value()) << i;
    if (single.has_value()) {
      EXPECT_EQ(results[i].count, *single) << i;
    }
  }
}

TEST(LookupBatchTest, EmptySummaryAndEmptyBatch) {
  LatticeSummary summary(2);
  LabelDict dict;
  Result<Twig> twig = Twig::Parse("a(b)", &dict);
  ASSERT_TRUE(twig.ok());
  LatticeSummary::ProbeKey key{twig->CanonicalHash(), twig->CanonicalCode()};
  uint32_t order = 0;
  LatticeSummary::ProbeResult result;
  summary.LookupBatch(&key, 1, &order, &result);
  EXPECT_FALSE(result.found);
  summary.LookupBatch(nullptr, 0, nullptr, nullptr);  // no-op, no crash
}

class BatchEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    summary_ = std::make_unique<LatticeSummary>(2);
    FillTestSummary(summary_.get(), &dict_);
  }

  /// The workload every bit-identity check runs: duplicates, summary
  /// hits, provably-zero smalls, deep recursive shapes, and unknowns.
  std::vector<Twig> Workload() {
    return ParseAll({"a(b)", "a(b,c)", "a(b)", "a(t0,t1,t2)", "b(c)",
                     "a(b(c),t4)", "a(t0,t1,t2)", "nosuch(labels)",
                     "a(t5,t6,t7,t8)", "c"},
                    &dict_);
  }

  void CheckBitIdentical(RecursiveDecompositionEstimator::Options options) {
    std::vector<Twig> queries = Workload();
    RecursiveDecompositionEstimator sequential(summary_.get(), options);
    EstimateScratch scratch;
    EstimateOptions sequential_options;
    sequential_options.scratch = &scratch;
    std::vector<double> expected;
    for (const Twig& query : queries) {
      Result<double> value = sequential.Estimate(query, sequential_options);
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      expected.push_back(*value);
    }

    BatchEstimator batch(summary_.get(), options);
    std::vector<EstimateResult> results(queries.size());
    ASSERT_TRUE(batch.EstimateBatch(queries, EstimateOptions(), results).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok())
          << i << ": " << results[i].status.ToString();
      // Exact bits, not approximate: the shared batch memo must be
      // indistinguishable from per-query fresh memos.
      EXPECT_EQ(results[i].estimate, expected[i]) << "query " << i;
    }
  }

  LabelDict dict_;
  std::unique_ptr<LatticeSummary> summary_;
};

TEST_F(BatchEstimatorTest, BitIdenticalToSequentialNonVoting) {
  CheckBitIdentical(RecursiveDecompositionEstimator::Options());
}

TEST_F(BatchEstimatorTest, BitIdenticalToSequentialVotingMean) {
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  CheckBitIdentical(
      RecursiveDecompositionEstimator::Options{true, 0, Agg::kMean});
}

TEST_F(BatchEstimatorTest, BitIdenticalToSequentialVotingMedian) {
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  CheckBitIdentical(
      RecursiveDecompositionEstimator::Options{true, 0, Agg::kMedian});
}

TEST_F(BatchEstimatorTest, RepeatedCallsReuseArenaWithoutDrift) {
  // Second and third batches over the same estimator hit the Reset path
  // of the arena and the memo; values must not drift run to run.
  std::vector<Twig> queries = Workload();
  BatchEstimator batch(summary_.get());
  std::vector<EstimateResult> first(queries.size());
  ASSERT_TRUE(batch.EstimateBatch(queries, EstimateOptions(), first).ok());
  for (int round = 0; round < 3; ++round) {
    std::vector<EstimateResult> again(queries.size());
    ASSERT_TRUE(batch.EstimateBatch(queries, EstimateOptions(), again).ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(again[i].estimate, first[i].estimate);
    }
  }
}

TEST_F(BatchEstimatorTest, SpanMismatchAndEmptyBatchAndEmptyQuery) {
  BatchEstimator batch(summary_.get());
  std::vector<Twig> queries = ParseAll({"a(b)"}, &dict_);
  std::vector<EstimateResult> wrong(2);
  EXPECT_FALSE(batch.EstimateBatch(queries, EstimateOptions(), wrong).ok());

  EXPECT_TRUE(batch
                  .EstimateBatch(std::span<const Twig>(),
                                 EstimateOptions(),
                                 std::span<EstimateResult>())
                  .ok());

  std::vector<Twig> with_empty;
  with_empty.push_back(queries[0]);
  with_empty.push_back(Twig());
  std::vector<EstimateResult> results(2);
  ASSERT_TRUE(batch.EstimateBatch(with_empty, EstimateOptions(), results).ok());
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
}

TEST_F(BatchEstimatorTest, SharedGovernorTripsAndReportsWorkSteps) {
  // A step budget the star query cannot meet: the batch must come back
  // with per-item failures (never a wrong value) and report steps spent.
  std::vector<Twig> queries =
      ParseAll({"a(t0,t1,t2,t3,t4,t5,t6,t7,t8,t9,t10,t11)"}, &dict_);
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  BatchEstimator batch(
      summary_.get(),
      RecursiveDecompositionEstimator::Options{true, 0, Agg::kMean});
  EstimateOptions options;
  options.max_work_steps = 50;
  uint64_t steps = 0;
  options.work_steps = &steps;
  std::vector<EstimateResult> results(queries.size());
  ASSERT_TRUE(batch.EstimateBatch(queries, options, results).ok());
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_GT(steps, 0u);
}

TEST_F(BatchEstimatorTest, CancelledBatchFailsEveryRecursiveItem) {
  CancelToken cancel;
  cancel.Cancel();
  std::vector<Twig> queries = ParseAll({"a(b,c)", "a(t0,t1,t2)"}, &dict_);
  BatchEstimator batch(summary_.get());
  EstimateOptions options;
  options.cancel = &cancel;
  std::vector<EstimateResult> results(queries.size());
  ASSERT_TRUE(batch.EstimateBatch(queries, options, results).ok());
  for (const EstimateResult& result : results) {
    EXPECT_FALSE(result.status.ok());
  }
}

TEST_F(BatchEstimatorTest, GovernedValuesMatchSequentialWhenBudgetSuffices) {
  // A budget generous enough to never trip: governed batches must still
  // produce the sequential bits (trip points may differ only when a trip
  // actually happens).
  std::vector<Twig> queries = Workload();
  RecursiveDecompositionEstimator sequential(summary_.get());
  EstimateScratch scratch;
  std::vector<double> expected;
  for (const Twig& query : queries) {
    EstimateOptions options;
    options.scratch = &scratch;
    Result<double> value = sequential.Estimate(query, options);
    ASSERT_TRUE(value.ok());
    expected.push_back(*value);
  }
  BatchEstimator batch(summary_.get());
  EstimateOptions options;
  options.max_work_steps = 100000000;
  std::vector<EstimateResult> results(queries.size());
  ASSERT_TRUE(batch.EstimateBatch(queries, options, results).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_EQ(results[i].estimate, expected[i]) << "query " << i;
  }
}

TEST(EstimateCacheBatchTest, GetBatchAgreesWithSingleGets) {
  serve::EstimateCache cache(serve::EstimateCache::Options{});
  const std::vector<std::string> codes = {"0(1)", "0(2)", "1(2)", "2(3)"};
  for (size_t i = 0; i < codes.size(); ++i) {
    cache.Put(1, HashBytes(codes[i]), codes[i],
              static_cast<double>(i) + 0.5);
  }
  // Probe a mix of present and absent keys through both paths.
  std::vector<std::string> probe_codes = codes;
  probe_codes.push_back("9(9)");
  probe_codes.push_back("0(1)");
  std::vector<uint64_t> hashes;
  std::vector<std::string_view> views;
  for (const std::string& code : probe_codes) {
    hashes.push_back(HashBytes(code));
    views.push_back(code);
  }
  std::vector<std::optional<double>> batched(probe_codes.size());
  cache.GetBatch(1, hashes.data(), views.data(), probe_codes.size(),
                 batched.data());
  for (size_t i = 0; i < probe_codes.size(); ++i) {
    std::optional<double> single = cache.Get(1, hashes[i], views[i]);
    EXPECT_EQ(batched[i].has_value(), single.has_value()) << probe_codes[i];
    if (single.has_value()) {
      EXPECT_EQ(*batched[i], *single) << probe_codes[i];
    }
  }
}

TEST(EstimateCacheBatchTest, GetBatchHonorsTheVersionFence) {
  serve::EstimateCache cache(serve::EstimateCache::Options{});
  const std::string code = "0(1)";
  const uint64_t hash = HashBytes(code);
  cache.Put(1, hash, code, 42.0);
  std::string_view view = code;
  std::optional<double> result;
  cache.GetBatch(2, &hash, &view, 1, &result);  // new snapshot: stale entry
  EXPECT_FALSE(result.has_value());
}

TEST(BatchRequestLineTest, DetectsAndParsesStringsAndEnvelopes) {
  EXPECT_TRUE(serve::IsBatchRequestLine(R"json(["a(b)"])json"));
  EXPECT_TRUE(serve::IsBatchRequestLine("  [1]"));
  EXPECT_FALSE(serve::IsBatchRequestLine(R"({"query":"a"})"));
  EXPECT_FALSE(serve::IsBatchRequestLine("a(b)"));

  Result<serve::ServeBatch> batch = serve::ParseBatchRequestLine(
      R"json(["a(b)", {"query":"b(c)","deadline_ms":5,"max_steps":100,"id":7}])json");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->items.size(), 2u);
  EXPECT_EQ(batch->items[0].query, "a(b)");
  EXPECT_EQ(batch->items[1].query, "b(c)");
  EXPECT_DOUBLE_EQ(batch->items[1].deadline_millis, 5.0);
  EXPECT_EQ(batch->items[1].max_work_steps, 100u);
  EXPECT_EQ(batch->items[1].id, 7u);
}

TEST(BatchRequestLineTest, RejectsMalformedBatches) {
  EXPECT_FALSE(serve::ParseBatchRequestLine("[]").ok());
  EXPECT_FALSE(serve::ParseBatchRequestLine("[42]").ok());
  EXPECT_FALSE(serve::ParseBatchRequestLine(R"([""])").ok());
  EXPECT_FALSE(serve::ParseBatchRequestLine(R"([{"id":1}])").ok());
  EXPECT_FALSE(serve::ParseBatchRequestLine("[\"a\",").ok());
  // Per-line query cap: 3 queries against a limit of 2.
  Result<serve::ServeBatch> capped =
      serve::ParseBatchRequestLine(R"(["a","b","c"])", /*max_items=*/2);
  EXPECT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchResponseJsonTest, ToJsonLineIsOneArrayOfResponseObjects) {
  serve::ServeBatchResponse response;
  response.items.resize(2);
  response.items[0].id = 1;
  response.items[0].ok = true;
  response.items[0].estimate = 4.5;
  response.items[1].id = 2;
  response.items[1].error_code = "InvalidArgument";
  response.items[1].error_message = "bad";
  const std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  Result<JsonValue> json = ParseJson(line);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  ASSERT_EQ(json->array.size(), 2u);
  EXPECT_TRUE(json->array[0].Find("ok")->bool_value);
  EXPECT_DOUBLE_EQ(json->array[0].Find("estimate")->number_value, 4.5);
  EXPECT_FALSE(json->array[1].Find("ok")->bool_value);
}

/// Collects whole-batch responses under a lock.
struct BatchCollector {
  std::mutex mu;
  std::vector<serve::ServeBatchResponse> responses;

  serve::Server::BatchResponseSink Sink() {
    return [this](serve::ServeBatchResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    };
  }
};

class ServerBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/tl_batch_server.tls";
    LabelDict dict;
    LatticeSummary summary(2);
    FillTestSummary(&summary, &dict);
    ASSERT_TRUE(SaveSummaryV2(summary, &dict, Env::Default(), path_).ok());
    serve::ReloadOptions options;
    options.backoff_millis = 0.0;
    ASSERT_TRUE(
        serve::ReloadSummary(Env::Default(), path_, options, &snapshots_)
            .ok());
  }

  void TearDown() override {
    ASSERT_TRUE(Env::Default()->DeleteFile(path_).ok());
  }

  std::string path_;
  serve::SnapshotHolder snapshots_;
};

TEST_F(ServerBatchTest, BatchMatchesSinglesBitwiseWithDedupAndErrors) {
  const std::vector<std::string> queries = {"a(b)",  "a(b,c)", "a(b)",
                                            "((((",  "b(c)",   "nosuch(x)"};
  // Reference run: the same queries as singles through their own server.
  std::vector<serve::ServeResponse> singles(queries.size());
  {
    std::mutex mu;
    serve::Server server(&snapshots_, serve::ServerOptions(),
                         [&](const serve::ServeResponse& response) {
                           std::lock_guard<std::mutex> lock(mu);
                           singles[response.id - 1] = response;
                         });
    for (size_t i = 0; i < queries.size(); ++i) {
      serve::ServeRequest request;
      request.id = i + 1;
      request.query = queries[i];
      ASSERT_TRUE(server.Submit(std::move(request)));
    }
    server.Shutdown();
  }

  BatchCollector batches;
  serve::Server server(&snapshots_, serve::ServerOptions(), nullptr,
                       batches.Sink());
  serve::ServeBatch batch;
  for (size_t i = 0; i < queries.size(); ++i) {
    serve::ServeRequest item;
    item.id = i + 1;
    item.query = queries[i];
    batch.items.push_back(std::move(item));
  }
  ASSERT_TRUE(server.SubmitBatch(std::move(batch)));
  server.Shutdown();

  ASSERT_EQ(batches.responses.size(), 1u);
  const serve::ServeBatchResponse& response = batches.responses[0];
  ASSERT_EQ(response.items.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const serve::ServeResponse& item = response.items[i];
    EXPECT_EQ(item.id, i + 1);
    EXPECT_EQ(item.query, queries[i]);
    EXPECT_EQ(item.ok, singles[i].ok) << queries[i];
    if (item.ok) {
      // Exact bits: the batch pipeline (dedup + shared memo + grouped
      // probes + cache filter) must be invisible in the values.
      EXPECT_EQ(item.estimate, singles[i].estimate) << queries[i];
      EXPECT_EQ(item.rung, singles[i].rung);
    } else {
      EXPECT_EQ(item.error_code, singles[i].error_code) << queries[i];
    }
  }
  // The duplicate "a(b)" items must agree with each other too.
  EXPECT_EQ(response.items[0].estimate, response.items[2].estimate);

  serve::Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.ok + stats.errors, queries.size());
}

TEST_F(ServerBatchTest, SecondIdenticalBatchAnswersFromTheCache) {
  BatchCollector batches;
  serve::Server server(&snapshots_, serve::ServerOptions(), nullptr,
                       batches.Sink());
  for (int round = 0; round < 2; ++round) {
    serve::ServeBatch batch;
    for (const char* text : {"a(b,c)", "a(t0,t1,t2)"}) {
      serve::ServeRequest item;
      item.query = text;
      batch.items.push_back(std::move(item));
    }
    ASSERT_TRUE(server.SubmitBatch(std::move(batch)));
  }
  server.Shutdown();

  ASSERT_EQ(batches.responses.size(), 2u);
  const auto& first = batches.responses[0].items;
  const auto& second = batches.responses[1].items;
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok);
    ASSERT_TRUE(second[i].ok);
    EXPECT_EQ(second[i].estimate, first[i].estimate);
    EXPECT_FALSE(first[i].cached);
    EXPECT_TRUE(second[i].cached) << i;
  }
}

TEST_F(ServerBatchTest, WholeBatchShedsAtomicallyWhenQueueIsFull) {
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.worker_delay_millis = 20.0;  // hold the worker so the queue fills
  BatchCollector batches;
  serve::Server server(&snapshots_, options, nullptr, batches.Sink());
  int admitted = 0;
  for (int b = 0; b < 8; ++b) {
    serve::ServeBatch batch;
    for (int i = 0; i < 3; ++i) {
      serve::ServeRequest item;
      item.id = static_cast<uint64_t>(i) + 1;
      item.query = "a(b)";
      batch.items.push_back(std::move(item));
    }
    if (server.SubmitBatch(std::move(batch))) ++admitted;
  }
  server.Shutdown();

  ASSERT_EQ(batches.responses.size(), 8u);  // exactly one response per batch
  int shed_batches = 0;
  for (const serve::ServeBatchResponse& response : batches.responses) {
    ASSERT_EQ(response.items.size(), 3u);
    const bool first_shed = !response.items[0].ok &&
                            response.items[0].error_code ==
                                "ResourceExhausted";
    for (const serve::ServeResponse& item : response.items) {
      // Never a partial batch: all three shed together or none did.
      EXPECT_EQ(!item.ok && item.error_code == "ResourceExhausted",
                first_shed);
    }
    if (first_shed) ++shed_batches;
  }
  EXPECT_EQ(shed_batches, 8 - admitted);
  EXPECT_GT(shed_batches, 0) << "queue never filled; shedding untested";
  serve::Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(admitted) * 3u);
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(8 - admitted) * 3u);
}

TEST_F(ServerBatchTest, GovernedBatchDegradesPerItemNeverWrongValues) {
  // A per-item step budget the star query cannot meet on the primary
  // rung: the ladder answers degraded (or errors), and cheap items in the
  // same batch still answer exactly.
  serve::ServerOptions options;
  options.default_max_work_steps = 1000;
  BatchCollector batches;
  serve::Server server(&snapshots_, options, nullptr, batches.Sink());
  serve::ServeBatch batch;
  for (const char* text : {"a(b)", "a(t0,t1,t2,t3,t4,t5,t6,t7,t8,t9,t10,t11)"}) {
    serve::ServeRequest item;
    item.query = text;
    batch.items.push_back(std::move(item));
  }
  ASSERT_TRUE(server.SubmitBatch(std::move(batch)));
  server.Shutdown();

  ASSERT_EQ(batches.responses.size(), 1u);
  const auto& items = batches.responses[0].items;
  ASSERT_EQ(items.size(), 2u);
  ASSERT_TRUE(items[0].ok) << items[0].error_message;
  EXPECT_DOUBLE_EQ(items[0].estimate, 5.0);  // exact summary count for a(b)
  ASSERT_TRUE(items[1].ok) << items[1].error_message;
  EXPECT_TRUE(items[1].degraded);
  EXPECT_NE(items[1].rung, "primary");
}

TEST_F(ServerBatchTest, CancelledBatchStillAnswersEveryItemExactlyOnce) {
  serve::ServerOptions options;
  options.workers = 1;
  options.worker_delay_millis = 5.0;
  BatchCollector batches;
  serve::Server server(&snapshots_, options, nullptr, batches.Sink());
  serve::ServeBatch batch;
  batch.cancel = std::make_shared<CancelToken>();
  std::shared_ptr<CancelToken> cancel = batch.cancel;
  for (int i = 0; i < 4; ++i) {
    serve::ServeRequest item;
    item.query = "a(t0,t1,t2,t3,t4,t5)";
    batch.items.push_back(std::move(item));
  }
  ASSERT_TRUE(server.SubmitBatch(std::move(batch)));
  cancel->Cancel();  // may land before, during, or after estimation
  server.Shutdown();

  ASSERT_EQ(batches.responses.size(), 1u);
  // Exactly one terminal outcome per item, whatever the cancel race did:
  // every item either answered or failed, none vanished.
  EXPECT_EQ(batches.responses[0].items.size(), 4u);
  serve::Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.ok + stats.errors, 4u);
}

TEST_F(ServerBatchTest, NoBatchSinkFansOutThroughTheItemSink) {
  std::mutex mu;
  std::vector<serve::ServeResponse> items;
  serve::Server server(&snapshots_, serve::ServerOptions(),
                       [&](const serve::ServeResponse& response) {
                         std::lock_guard<std::mutex> lock(mu);
                         items.push_back(response);
                       });
  serve::ServeBatch batch;
  for (uint64_t id = 1; id <= 3; ++id) {
    serve::ServeRequest item;
    item.id = id;
    item.query = "a(b)";
    batch.items.push_back(std::move(item));
  }
  ASSERT_TRUE(server.SubmitBatch(std::move(batch)));
  server.Shutdown();
  ASSERT_EQ(items.size(), 3u);
  for (const serve::ServeResponse& item : items) {
    EXPECT_TRUE(item.ok) << item.error_message;
    EXPECT_DOUBLE_EQ(item.estimate, 5.0);
  }
}

}  // namespace
}  // namespace treelattice
