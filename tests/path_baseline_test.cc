#include <string>

#include <gtest/gtest.h>

#include "core/markov_path_estimator.h"
#include "core/path_decomposition_estimator.h"
#include "core/recursive_estimator.h"
#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

LatticeSummary MustBuild(const Document& doc, int level) {
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return std::move(summary).value();
}

TEST(PathDecompositionTest, CoincidesWithMarkovOnPaths) {
  RandomTreeOptions tree;
  tree.seed = 5;
  tree.num_nodes = 200;
  tree.num_labels = 4;
  tree.max_depth = 9;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);
  PathDecompositionEstimator paths(&summary);
  MarkovPathEstimator markov(&summary);

  WorkloadOptions wl;
  wl.seed = 3;
  wl.query_size = 5;
  wl.num_queries = 40;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    if (!q.IsPath()) continue;
    auto a = paths.Estimate(q);
    auto b = markov.Estimate(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-9 * (1 + *b)) << q.ToDebugString();
  }
}

TEST(PathDecompositionTest, BranchFormulaOnSimpleTwig) {
  // 10 a's; 4 with b, 5 with c, 2 with both (no correlation info in paths).
  std::string xml = "<r>";
  for (int i = 0; i < 2; ++i) xml += "<a><b/><c/></a>";
  for (int i = 0; i < 2; ++i) xml += "<a><b/></a>";
  for (int i = 0; i < 3; ++i) xml += "<a><c/></a>";
  for (int i = 0; i < 3; ++i) xml += "<a/>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 2);
  PathDecompositionEstimator paths(&summary);
  // Leaf paths a/b (4) and a/c (5); branch node 'a' (10):
  // est = 4 * 5 / 10 = 2 (here equal to the true count by construction).
  Twig query = MustParse("a(b,c)", dict);
  auto estimate = paths.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-9);
}

TEST(PathDecompositionTest, MissesCorrelationThatSubtreesCapture) {
  // b and c co-occur perfectly under a, but the path view cannot see it:
  // 5 a(b,c) and 5 bare a's.
  std::string xml = "<r>";
  for (int i = 0; i < 5; ++i) xml += "<a><b/><c/></a>";
  for (int i = 0; i < 5; ++i) xml += "<a/>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);
  // Size-4 query forces both estimators to decompose from the 3-lattice.
  LatticeSummary summary = MustBuild(*doc, 3);
  RecursiveDecompositionEstimator recursive(&summary);
  PathDecompositionEstimator paths(&summary);

  Twig query = MustParse("r(a(b,c))", dict);
  double truth = static_cast<double>(counter.Count(query));
  EXPECT_EQ(truth, 5.0);
  auto subtree_est = recursive.Estimate(query);
  auto path_est = paths.Estimate(query);
  ASSERT_TRUE(subtree_est.ok() && path_est.ok());
  // The subtree summary stores a(b,c) at level 3 and stays exact; the
  // path decomposition multiplies marginals: 5 * 5 / 10 = 2.5.
  EXPECT_NEAR(*subtree_est, 5.0, 1e-9);
  EXPECT_NEAR(*path_est, 2.5, 1e-9);
}

TEST(PathDecompositionTest, ZeroWhenAnyPathMissing) {
  auto doc = ParseXmlString("<r><a><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  PathDecompositionEstimator paths(&summary);
  Twig query = MustParse("a(b,zzz)", dict);
  auto estimate = paths.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0.0);
  Twig empty;
  EXPECT_FALSE(paths.Estimate(empty).ok());
}

}  // namespace
}  // namespace treelattice
