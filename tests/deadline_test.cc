// Governed-estimation suite: Deadline / CancelToken / CostGovernor units,
// budget enforcement inside the estimators, and the degradation ladder's
// acceptance property — a deadline-D request on a pathologically
// expensive query still answers, from a cheaper rung, within ~2x D.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/degrading_estimator.h"
#include "core/fixed_size_estimator.h"
#include "core/recursive_estimator.h"
#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "util/deadline.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace {

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 1e12);
  EXPECT_TRUE(Deadline::Infinite().is_infinite());
}

TEST(DeadlineTest, NonPositiveDurationExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(0.0).expired());
  EXPECT_TRUE(Deadline::After(-5.0).expired());
  EXPECT_LE(Deadline::After(-5.0).remaining_millis(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineIsPending) {
  Deadline d = Deadline::After(60000.0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 0.0);
  EXPECT_LE(d.remaining_millis(), 60000.0);
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CostGovernorTest, UngovernedAlwaysSucceedsButCounts) {
  CostGovernor governor;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(governor.Charge().ok());
  EXPECT_EQ(governor.steps(), 1000u);
  EXPECT_FALSE(governor.tripped());
}

TEST(CostGovernorTest, StepBudgetTripsDeterministically) {
  CostGovernor governor(Deadline::Infinite(), nullptr, /*max_steps=*/10);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(governor.Charge().ok());
  Status trip = governor.Charge();
  EXPECT_EQ(trip.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(governor.tripped());
  // Sticky: every later charge repeats the same error.
  EXPECT_EQ(governor.Charge().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.Charge(100).code(), StatusCode::kResourceExhausted);
}

TEST(CostGovernorTest, ExpiredDeadlineTripsOnFirstCharge) {
  CostGovernor governor(Deadline::After(-1.0), nullptr, 0);
  EXPECT_EQ(governor.Charge().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(governor.tripped());
}

TEST(CostGovernorTest, DeadlineCheckedAtClockInterval) {
  // The clock is read every kClockCheckInterval charges, so an expiry
  // between checks is noticed at most one interval late — never missed.
  CostGovernor governor(Deadline::After(5.0), nullptr, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status status = Status::OK();
  for (uint64_t i = 0; i <= CostGovernor::kClockCheckInterval + 1; ++i) {
    status = governor.Charge();
    if (!status.ok()) break;
  }
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(CostGovernorTest, CancellationTripsAndIsPreferred) {
  CancelToken token;
  CostGovernor governor(Deadline::Infinite(), &token, /*max_steps=*/1000);
  EXPECT_TRUE(governor.Charge().ok());
  token.Cancel();
  EXPECT_EQ(governor.Charge().code(), StatusCode::kCancelled);
  EXPECT_TRUE(governor.tripped());
}

TEST(CostGovernorTest, IsBudgetErrorCoversExactlyTheTripCodes) {
  EXPECT_TRUE(CostGovernor::IsBudgetError(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(CostGovernor::IsBudgetError(StatusCode::kResourceExhausted));
  EXPECT_TRUE(CostGovernor::IsBudgetError(StatusCode::kCancelled));
  EXPECT_FALSE(CostGovernor::IsBudgetError(StatusCode::kOk));
  EXPECT_FALSE(CostGovernor::IsBudgetError(StatusCode::kInvalidArgument));
  EXPECT_FALSE(CostGovernor::IsBudgetError(StatusCode::kInternal));
}

// --- estimator-level governance ------------------------------------------

/// A summary whose level-2 knowledge covers a wide star query: the voting
/// recursion on star(n) explores combinatorially many distinct sub-stars,
/// so an ungoverned run is effectively unbounded while every sub-twig
/// lookup stays answerable.
class GovernedEstimationTest : public ::testing::Test {
 protected:
  static constexpr int kStarWidth = 20;

  void SetUp() override {
    summary_ = std::make_unique<LatticeSummary>(2);
    Insert("r", 1000);
    std::string star = "r(";
    for (int i = 0; i < kStarWidth; ++i) {
      std::string child = "c" + std::to_string(i);
      Insert(child, 500 + i);
      Insert("r(" + child + ")", 100 + i);
      if (i > 0) star += ",";
      star += child;
    }
    star += ")";
    summary_->set_complete_through_level(2);
    Result<Twig> query = Twig::Parse(star, &dict_);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    star_query_ = std::make_unique<Twig>(std::move(*query));
  }

  void Insert(const std::string& text, uint64_t count) {
    Result<Twig> twig = Twig::Parse(text, &dict_);
    ASSERT_TRUE(twig.ok()) << twig.status().ToString();
    ASSERT_TRUE(summary_->Insert(*twig, count).ok());
  }

  LabelDict dict_;
  std::unique_ptr<LatticeSummary> summary_;
  std::unique_ptr<Twig> star_query_;
};

TEST_F(GovernedEstimationTest, UnrestrictedVotingExceedsLargeStepBudget) {
  // The star query dwarfs any budget a governed request would grant: a
  // million work steps (north of a second of recursion wall time, i.e.
  // >= 10x the 100 ms deadline the acceptance test below uses) are not
  // enough to finish, which is what makes the degradation ladder
  // necessary rather than nice.
  RecursiveDecompositionEstimator voting(
      summary_.get(),
      RecursiveDecompositionEstimator::Options{
          true, 0, RecursiveDecompositionEstimator::VoteAggregation::kMean});
  EstimateOptions options;
  options.max_work_steps = 1'000'000;
  Result<double> estimate = voting.Estimate(*star_query_, options);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GovernedEstimationTest, DeadlineTripsRecursiveEstimator) {
  RecursiveDecompositionEstimator voting(
      summary_.get(),
      RecursiveDecompositionEstimator::Options{
          true, 0, RecursiveDecompositionEstimator::VoteAggregation::kMean});
  Result<double> estimate =
      voting.Estimate(*star_query_, EstimateOptions::WithDeadlineMillis(20.0));
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernedEstimationTest, UngovernedOptionsChangeNothing) {
  // Small query, default options: the governed overload must agree with
  // the plain one bit-for-bit.
  Result<Twig> small = Twig::Parse("r(c0,c1)", &dict_);
  ASSERT_TRUE(small.ok());
  RecursiveDecompositionEstimator plain(summary_.get());
  Result<double> a = plain.Estimate(*small);
  Result<double> b = plain.Estimate(*small, EstimateOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST_F(GovernedEstimationTest, LadderDegradesToFixedSizeOnStepBudget) {
  // Step budgets are deterministic: 20k steps starves the voting
  // recursion but comfortably covers the fixed-size sweep, so the ladder
  // must answer from rung 1 every single run.
  DegradingEstimator ladder(summary_.get());
  EstimateOptions options;
  options.max_work_steps = 20'000;
  Result<DegradingEstimator::DegradedEstimate> result =
      ladder.EstimateDegraded(*star_query_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, DegradingEstimator::Rung::kFixedSize);
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->primary_status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(result->estimate, 0.0);

  // The same query through the plain governed Estimate returns just the
  // number, and the rung name renders stably for serve responses.
  Result<double> estimate = ladder.Estimate(*star_query_, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, result->estimate);
  EXPECT_EQ(DegradingEstimator::RungName(result->rung), "fixed-size");
}

TEST_F(GovernedEstimationTest, DeadlineAnswersDegradedWithinTwiceDeadline) {
  // The acceptance property: deadline D on a query whose unrestricted
  // voting estimate is effectively unbounded (see
  // UnrestrictedVotingExceedsLargeStepBudget) must still produce an
  // answer, from a fallback rung, within ~2x D — the primary gets D, the
  // fallback a fresh D/2 grace, and overshoot is bounded by the
  // governor's 64-step clock interval.
  constexpr double kDeadlineMillis = 100.0;
  DegradingEstimator ladder(summary_.get());
  const auto start = std::chrono::steady_clock::now();
  Result<DegradingEstimator::DegradedEstimate> result = ladder.EstimateDegraded(
      *star_query_, EstimateOptions::WithDeadlineMillis(kDeadlineMillis));
  const double elapsed_millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->rung, DegradingEstimator::Rung::kPrimary);
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->primary_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(elapsed_millis, 2.0 * kDeadlineMillis)
      << "ladder overran ~2x the deadline (rung "
      << DegradingEstimator::RungName(result->rung) << ")";
}

TEST_F(GovernedEstimationTest, CancelledRequestsDoNotDegrade) {
  // Cancellation means "stop", not "answer cheaper": the ladder must
  // propagate kCancelled without trying a fallback rung.
  CancelToken token;
  token.Cancel();
  DegradingEstimator ladder(summary_.get());
  EstimateOptions options;
  options.cancel = &token;
  Result<DegradingEstimator::DegradedEstimate> result =
      ladder.EstimateDegraded(*star_query_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernedEstimationTest, PathQueriesFallThroughToMarkovRung) {
  // max_work_steps=1 starves every governed rung (the fallback inherits
  // the cap with a fresh governor), leaving the ungoverned markov floor —
  // reachable only because path queries make its work strictly linear.
  Insert("c0(c1)", 50);
  Result<Twig> path = Twig::Parse("r(c0(c1))", &dict_);
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(path->IsPath());

  DegradingEstimator ladder(summary_.get());
  EstimateOptions options;
  options.max_work_steps = 1;
  Result<DegradingEstimator::DegradedEstimate> result =
      ladder.EstimateDegraded(*path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rung, DegradingEstimator::Rung::kMarkovPath);
  EXPECT_TRUE(result->degraded);
  EXPECT_GT(result->estimate, 0.0);

  // A star (non-path) query with the same starvation has no floor left:
  // the original budget error surfaces instead of a wrong answer.
  Result<DegradingEstimator::DegradedEstimate> starved =
      ladder.EstimateDegraded(*star_query_, options);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace treelattice
