#!/bin/sh
# End-to-end smoke test of the treelattice CLI: build a summary from XML,
# inspect and verify it, estimate twig + XPath queries (with --explain),
# and compare against exact counts. Also exercises the crash-safety
# surface: a deliberately truncated summary must be flagged by `verify`
# and either salvaged or cleanly refused by `estimate`. Invoked by ctest
# with the binary path as $1.
set -e

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/doc.xml" <<'EOF'
<catalog>
  <items>
    <item><name/><price/></item>
    <item><name/><price/></item>
    <item><name/></item>
  </items>
  <vendors><vendor><name/></vendor></vendors>
</catalog>
EOF

# build: writes a single v2 container, no .dict sidecar
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/doc.summary" --level=3 \
    > "$WORKDIR/build.out"
grep -q "parsed 13 elements" "$WORKDIR/build.out"
grep -q "dict embedded" "$WORKDIR/build.out"
test -f "$WORKDIR/doc.summary"
test ! -f "$WORKDIR/doc.summary.dict"
test ! -f "$WORKDIR/doc.summary.tmp"

# stats
"$CLI" stats "$WORKDIR/doc.summary" > "$WORKDIR/stats.out"
grep -q "TLSUMMARY v2" "$WORKDIR/stats.out"
grep -q "max level:        3" "$WORKDIR/stats.out"
grep -q "dict:             embedded" "$WORKDIR/stats.out"

# verify: freshly built summary is intact, per-level lines present
"$CLI" verify "$WORKDIR/doc.summary" > "$WORKDIR/verify.out"
grep -q "RESULT: intact" "$WORKDIR/verify.out"
grep -q "level 1" "$WORKDIR/verify.out"
grep -q "level 3" "$WORKDIR/verify.out"
grep -q "end marker" "$WORKDIR/verify.out"

# estimate: twig syntax and XPath syntax, exact in-lattice values
"$CLI" estimate "$WORKDIR/doc.summary" "item(name,price)" \
    > "$WORKDIR/est1.out"
grep -q "2.00" "$WORKDIR/est1.out"
"$CLI" estimate "$WORKDIR/doc.summary" "item[name][price]" --explain \
    > "$WORKDIR/est2.out"
grep -q "2.00" "$WORKDIR/est2.out"
grep -q "summary" "$WORKDIR/est2.out"

# truth
"$CLI" truth "$WORKDIR/doc.xml" "item(name,price)" > "$WORKDIR/truth.out"
grep -q "2" "$WORKDIR/truth.out"

# pruned build
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/pruned.summary" --level=3 \
    --prune-delta=0 > "$WORKDIR/build2.out"
grep -q "pruned" "$WORKDIR/build2.out"

# truncated summary: verify must flag it, estimate must salvage (warning
# on stderr, estimates still served from the intact prefix) or refuse
SIZE=$(wc -c < "$WORKDIR/doc.summary")
head -c $((SIZE - 30)) "$WORKDIR/doc.summary" > "$WORKDIR/truncated.summary"
if "$CLI" verify "$WORKDIR/truncated.summary" > "$WORKDIR/verify2.out"; then
  echo "expected verify to flag truncated summary" >&2
  exit 1
fi
grep -q "RESULT: CORRUPT" "$WORKDIR/verify2.out"
if "$CLI" estimate "$WORKDIR/truncated.summary" "name" \
    > "$WORKDIR/est3.out" 2> "$WORKDIR/est3.err"; then
  grep -q "warning" "$WORKDIR/est3.err"   # salvage mode announces itself
  grep -q "4.00" "$WORKDIR/est3.out"      # level 1 survived: exact count
else
  grep -q "." "$WORKDIR/est3.err"         # refusal must say why
fi

# garbage file: verify and estimate both refuse cleanly
head -c 100 /dev/urandom > "$WORKDIR/garbage.summary" 2>/dev/null \
  || dd if=/dev/zero of="$WORKDIR/garbage.summary" bs=100 count=1 2>/dev/null
if "$CLI" verify "$WORKDIR/garbage.summary" 2>/dev/null; then
  echo "expected verify to reject garbage" >&2
  exit 1
fi
if "$CLI" estimate "$WORKDIR/garbage.summary" "name" 2>/dev/null; then
  echo "expected estimate to reject garbage" >&2
  exit 1
fi

# telemetry: --metrics file on build, with nonzero mining/io counters
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/doc2.summary" --level=3 \
    --metrics="$WORKDIR/build_metrics.json" > /dev/null
grep -q '"mining.patterns_inserted":' "$WORKDIR/build_metrics.json"
grep -q '"io.bytes_written":' "$WORKDIR/build_metrics.json"
if grep -q '"mining.patterns_inserted":0,' "$WORKDIR/build_metrics.json"; then
  echo "expected nonzero mining.patterns_inserted" >&2
  exit 1
fi

# telemetry: Prometheus rendering
"$CLI" stats "$WORKDIR/doc.summary" --metrics=- --metrics-format=prom \
    > "$WORKDIR/prom.out"
grep -q "# TYPE treelattice_summary_loads counter" "$WORKDIR/prom.out"

# telemetry: estimate --json emits one record per query with counters, and
# --metrics=- appends the registry dump (nonzero summary hits, depth
# histogram populated)
"$CLI" estimate "$WORKDIR/doc.summary" "item(name,price)" \
    "catalog(items(item(name)),vendors)" --json --metrics=- \
    > "$WORKDIR/est_json.out"
grep -q '"query":"item(name,price)"' "$WORKDIR/est_json.out"
grep -q '"estimator":"recursive"' "$WORKDIR/est_json.out"
grep -q '"estimate":2' "$WORKDIR/est_json.out"
grep -q '"wall_micros":' "$WORKDIR/est_json.out"
grep -q '"summary_hits":' "$WORKDIR/est_json.out"
grep -q '"estimator.summary_hits":[1-9]' "$WORKDIR/est_json.out"
grep -q '"estimator.decomposition_depth":{"count":[1-9]' "$WORKDIR/est_json.out"

# telemetry: --trace writes a Chrome trace_event file
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/doc3.summary" --level=3 \
    --trace="$WORKDIR/build_trace.json" > /dev/null
grep -q '"traceEvents":\[' "$WORKDIR/build_trace.json"
grep -q '"ph":"X"' "$WORKDIR/build_trace.json"
grep -q '"name":"mining.build"' "$WORKDIR/build_trace.json"

# telemetry: TREELATTICE_OBS=off leaves counters at zero
TREELATTICE_OBS=off "$CLI" estimate "$WORKDIR/doc.summary" \
    "item(name,price)" --metrics="$WORKDIR/off_metrics.json" > /dev/null
grep -q '"estimator.summary_hits":0' "$WORKDIR/off_metrics.json"

# bad --metrics-format is rejected
if "$CLI" stats "$WORKDIR/doc.summary" --metrics=- --metrics-format=xml \
    2>/dev/null; then
  echo "expected rejection of bad metrics format" >&2
  exit 1
fi

# serve: newline-delimited queries in, one JSON response per request out,
# graceful drain on EOF (the full fault-injected soak lives in
# serve_smoke.sh under the `serve` ctest label)
printf 'item(name,price)\nitem[name][price]\n#stats\n' \
  | "$CLI" serve "$WORKDIR/doc.summary" --workers=2 \
  > "$WORKDIR/serve.out" 2> "$WORKDIR/serve.err"
test "$(grep -c '^{"id":' "$WORKDIR/serve.out")" -eq 2
grep -q '"ok":true' "$WORKDIR/serve.out"
grep -q '"rung":"primary"' "$WORKDIR/serve.out"
grep -q '^{"stats":' "$WORKDIR/serve.out"
grep -q "serve: drained" "$WORKDIR/serve.err"

# error handling: bad inputs exit non-zero
if "$CLI" estimate "$WORKDIR/doc.summary" "a//b" 2>/dev/null; then
  echo "expected failure on descendant axis" >&2
  exit 1
fi
if "$CLI" build /nonexistent.xml --out="$WORKDIR/x" 2>/dev/null; then
  echo "expected failure on missing file" >&2
  exit 1
fi
if "$CLI" bogus-command 2>/dev/null; then
  echo "expected usage failure" >&2
  exit 1
fi

echo "CLI smoke test passed"
