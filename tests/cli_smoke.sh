#!/bin/sh
# End-to-end smoke test of the treelattice CLI: build a summary from XML,
# inspect it, estimate twig + XPath queries (with --explain), and compare
# against exact counts. Invoked by ctest with the binary path as $1.
set -e

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/doc.xml" <<'EOF'
<catalog>
  <items>
    <item><name/><price/></item>
    <item><name/><price/></item>
    <item><name/></item>
  </items>
  <vendors><vendor><name/></vendor></vendors>
</catalog>
EOF

# build
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/doc.summary" --level=3 \
    > "$WORKDIR/build.out"
grep -q "parsed 13 elements" "$WORKDIR/build.out"
test -f "$WORKDIR/doc.summary"
test -f "$WORKDIR/doc.summary.dict"

# stats
"$CLI" stats "$WORKDIR/doc.summary" > "$WORKDIR/stats.out"
grep -q "max level:        3" "$WORKDIR/stats.out"

# estimate: twig syntax and XPath syntax, exact in-lattice values
"$CLI" estimate "$WORKDIR/doc.summary" "item(name,price)" \
    > "$WORKDIR/est1.out"
grep -q "2.00" "$WORKDIR/est1.out"
"$CLI" estimate "$WORKDIR/doc.summary" "item[name][price]" --explain \
    > "$WORKDIR/est2.out"
grep -q "2.00" "$WORKDIR/est2.out"
grep -q "summary" "$WORKDIR/est2.out"

# truth
"$CLI" truth "$WORKDIR/doc.xml" "item(name,price)" > "$WORKDIR/truth.out"
grep -q "2" "$WORKDIR/truth.out"

# pruned build
"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/pruned.summary" --level=3 \
    --prune-delta=0 > "$WORKDIR/build2.out"
grep -q "pruned" "$WORKDIR/build2.out"

# error handling: bad inputs exit non-zero
if "$CLI" estimate "$WORKDIR/doc.summary" "a//b" 2>/dev/null; then
  echo "expected failure on descendant axis" >&2
  exit 1
fi
if "$CLI" build /nonexistent.xml --out="$WORKDIR/x" 2>/dev/null; then
  echo "expected failure on missing file" >&2
  exit 1
fi
if "$CLI" bogus-command 2>/dev/null; then
  echo "expected usage failure" >&2
  exit 1
fi

echo "CLI smoke test passed"
