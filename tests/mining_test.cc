#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LatticeBuilderTest, TinyDocumentAllLevels) {
  auto doc = ParseXmlString("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeBuildOptions options;
  options.max_level = 4;
  LatticeBuildStats stats;
  auto summary = BuildLattice(*doc, options, &stats);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  // Level 1: a, b, c.
  EXPECT_EQ(summary->NumPatterns(1), 3u);
  EXPECT_EQ(*summary->Lookup(MustParse("a", dict)), 1u);
  EXPECT_EQ(*summary->Lookup(MustParse("b", dict)), 2u);
  // Level 2: a(b), b(c).
  EXPECT_EQ(summary->NumPatterns(2), 2u);
  EXPECT_EQ(*summary->Lookup(MustParse("a(b)", dict)), 2u);
  // Level 3: a(b,b), a(b(c)), and nothing else.
  EXPECT_EQ(*summary->Lookup(MustParse("a(b,b)", dict)), 2u);
  EXPECT_EQ(*summary->Lookup(MustParse("a(b(c))", dict)), 1u);
  EXPECT_EQ(summary->NumPatterns(3), 2u);
  // Level 4: a(b(c),b) only (a(b,b) extended by c, dedup across orders).
  // One match: the c-bearing b must take the c role.
  EXPECT_EQ(summary->NumPatterns(4), 1u);
  EXPECT_EQ(*summary->Lookup(MustParse("a(b(c),b)", dict)), 1u);

  EXPECT_EQ(summary->complete_through_level(), 4);
  EXPECT_EQ(stats.patterns_per_level[1], 3u);
  EXPECT_EQ(stats.patterns_per_level[4], 1u);
  EXPECT_GT(stats.candidates_generated, 0u);
}

TEST(LatticeBuilderTest, EveryStoredCountIsExact) {
  RandomTreeOptions tree;
  tree.seed = 5;
  tree.num_nodes = 200;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  LatticeBuildOptions options;
  options.max_level = 4;
  auto summary = BuildLattice(doc, options);
  ASSERT_TRUE(summary.ok());

  MatchCounter counter(doc);
  size_t checked = 0;
  for (int level = 1; level <= 4; ++level) {
    for (const std::string& code : summary->PatternsAtLevel(level)) {
      Result<Twig> twig = Twig::FromCanonicalCode(code);
      ASSERT_TRUE(twig.ok());
      EXPECT_EQ(counter.Count(*twig), *summary->LookupCode(code))
          << "pattern " << code;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(LatticeBuilderTest, CompletenessNoOccurringPatternMissed) {
  // Exhaustively verify at level <= 3 on a small random document: every
  // distinct occurring 1/2/3-subtree pattern is present in the summary.
  RandomTreeOptions tree;
  tree.seed = 11;
  tree.num_nodes = 60;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeBuildOptions options;
  options.max_level = 3;
  auto summary = BuildLattice(doc, options);
  ASSERT_TRUE(summary.ok());

  // Enumerate document-embedded patterns directly: every connected node set
  // of size <= 3. Sets: single nodes, (parent,child), (grandparent chains)
  // and sibling pairs.
  std::set<std::string> expected;
  for (NodeId v = 0; v < static_cast<NodeId>(doc.NumNodes()); ++v) {
    Twig single;
    single.AddNode(doc.Label(v), -1);
    expected.insert(single.CanonicalCode());
  }
  size_t found_level1 = 0;
  for (const std::string& code : summary->PatternsAtLevel(1)) {
    EXPECT_TRUE(expected.count(code)) << code;
    ++found_level1;
  }
  EXPECT_EQ(found_level1, expected.size());

  // Spot-check level 2/3 patterns by recounting.
  MatchCounter counter(doc);
  for (int level = 2; level <= 3; ++level) {
    for (const std::string& code : summary->PatternsAtLevel(level)) {
      Result<Twig> twig = Twig::FromCanonicalCode(code);
      ASSERT_TRUE(twig.ok());
      EXPECT_GT(counter.Count(*twig), 0u);
    }
  }
}

TEST(LatticeBuilderTest, AprioriOffMatchesAprioriOn) {
  RandomTreeOptions tree;
  tree.seed = 23;
  tree.num_nodes = 120;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);

  LatticeBuildOptions with;
  with.max_level = 4;
  with.apriori_prune = true;
  LatticeBuildOptions without = with;
  without.apriori_prune = false;

  auto a = BuildLattice(doc, with);
  auto b = BuildLattice(doc, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumPatterns(), b->NumPatterns());
  for (int level = 1; level <= 4; ++level) {
    for (const std::string& code : a->PatternsAtLevel(level)) {
      EXPECT_EQ(a->LookupCode(code), b->LookupCode(code));
    }
  }
}

TEST(LatticeBuilderTest, EmptyDocument) {
  Document doc;
  auto summary = BuildLattice(doc);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->NumPatterns(), 0u);
  EXPECT_EQ(summary->complete_through_level(), 4);
}

TEST(LatticeBuilderTest, RejectsBadMaxLevel) {
  Document doc;
  LatticeBuildOptions options;
  options.max_level = 1;
  EXPECT_FALSE(BuildLattice(doc, options).ok());
}

TEST(LatticeBuilderTest, PatternCapMarksIncomplete) {
  RandomTreeOptions tree;
  tree.seed = 31;
  tree.num_nodes = 150;
  tree.num_labels = 6;
  Document doc = GenerateRandomTree(tree);
  LatticeBuildOptions options;
  options.max_level = 4;
  options.max_patterns_per_level = 3;
  auto summary = BuildLattice(doc, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_LT(summary->complete_through_level(), 4);
}

TEST(LatticeBuilderTest, ParallelCountingMatchesSequential) {
  RandomTreeOptions tree;
  tree.seed = 47;
  tree.num_nodes = 400;
  tree.num_labels = 6;
  Document doc = GenerateRandomTree(tree);

  LatticeBuildOptions sequential;
  sequential.max_level = 4;
  sequential.num_threads = 1;
  LatticeBuildOptions parallel = sequential;
  parallel.num_threads = 4;

  auto a = BuildLattice(doc, sequential);
  auto b = BuildLattice(doc, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumPatterns(), b->NumPatterns());
  for (int level = 1; level <= 4; ++level) {
    ASSERT_EQ(a->NumPatterns(level), b->NumPatterns(level));
    for (const std::string& code : a->PatternsAtLevel(level)) {
      EXPECT_EQ(a->LookupCode(code), b->LookupCode(code)) << code;
    }
  }
  EXPECT_EQ(a->complete_through_level(), b->complete_through_level());
}

TEST(LatticeBuilderTest, SingleNodeDocument) {
  Document doc;
  doc.AddNode("only", kInvalidNode);
  auto summary = BuildLattice(doc);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->NumPatterns(1), 1u);
  EXPECT_EQ(summary->NumPatterns(), 1u);
  EXPECT_EQ(summary->complete_through_level(), 4);
}

}  // namespace
}  // namespace treelattice
