#include <string>

#include <gtest/gtest.h>

#include "match/matcher.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

TEST(XPathTest, SimplePath) {
  LabelDict dict;
  auto twig = CompileXPath("/a/b/c", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 3);
  EXPECT_TRUE(twig->IsPath());
  EXPECT_EQ(twig->ToString(dict), "a(b(c))");
}

TEST(XPathTest, RelativePathEqualsAbsolute) {
  LabelDict dict;
  auto absolute = CompileXPath("/a/b", &dict);
  auto relative = CompileXPath("a/b", &dict);
  ASSERT_TRUE(absolute.ok() && relative.ok());
  EXPECT_EQ(absolute->CanonicalCode(), relative->CanonicalCode());
}

TEST(XPathTest, Predicates) {
  LabelDict dict;
  auto twig = CompileXPath("laptop[brand][price]", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "laptop(brand,price)");
}

TEST(XPathTest, PredicateWithPath) {
  LabelDict dict;
  auto twig =
      CompileXPath("/site/open_auctions/open_auction[bidder/time][seller]",
                   &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 6);
  EXPECT_EQ(twig->ToString(dict),
            "site(open_auctions(open_auction(bidder(time),seller)))");
}

TEST(XPathTest, NestedPredicates) {
  LabelDict dict;
  auto twig = CompileXPath("a/b[c[d]/e]", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "a(b(c(d,e)))");
}

TEST(XPathTest, PathContinuesAfterPredicate) {
  LabelDict dict;
  auto twig = CompileXPath("a[x]/b", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "a(x,b)");
}

TEST(XPathTest, WhitespaceTolerated) {
  LabelDict dict;
  auto twig = CompileXPath("  a [ b ] / c ", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 3);
}

TEST(XPathTest, RejectsUnsupportedConstructs) {
  LabelDict dict;
  EXPECT_FALSE(CompileXPath("//a", &dict).ok());
  EXPECT_FALSE(CompileXPath("a//b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a/*", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[@id]", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[1]", &dict).ok());
  EXPECT_FALSE(CompileXPath("", &dict).ok());
  EXPECT_FALSE(CompileXPath("   ", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a]b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a/", &dict).ok());
  EXPECT_FALSE(CompileXPath("/a/b/c extra", &dict).ok());
  EXPECT_FALSE(CompileXPath("a", nullptr).ok());
}

TEST(XPathTest, CompiledQueryCountsCorrectly) {
  auto doc = ParseXmlString(
      "<computer><laptops>"
      "<laptop><brand/><price/></laptop>"
      "<laptop><brand/><price/></laptop>"
      "</laptops><desktops/></computer>");
  ASSERT_TRUE(doc.ok());
  MatchCounter counter(*doc);
  auto twig = CompileXPath("laptop[brand][price]", &doc->mutable_dict());
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(counter.Count(*twig), 2u);
}

TEST(XPathTest, RoundTripThroughTwigToXPath) {
  LabelDict dict;
  for (const char* text :
       {"/a/b/c", "/laptop[brand][price]", "/a/b[c[d]/e]",
        "/site/open_auctions/open_auction[bidder/time][seller]"}) {
    auto twig = CompileXPath(text, &dict);
    ASSERT_TRUE(twig.ok()) << text;
    std::string rendered = TwigToXPath(*twig, dict);
    auto reparsed = CompileXPath(rendered, &dict);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(reparsed->CanonicalCode(), twig->CanonicalCode())
        << text << " -> " << rendered;
  }
  Twig empty;
  EXPECT_EQ(TwigToXPath(empty, dict), "");
}

// Malformed queries must come back as a diagnostic Status — never a
// crash, hang, or silently wrong twig. The table mirrors the seed corpus
// in tests/corpus/xpath/ that the fuzz harness replays.
TEST(XPathTest, MalformedQueriesRejectedWithDiagnostic) {
  struct Case {
    const char* name;
    std::string input;
    const char* want_message_fragment;
  };
  const Case kCases[] = {
      {"empty", "", "empty"},
      {"whitespace_only", "  \t ", "empty"},
      {"slash_only", "/", "expected element name"},
      {"trailing_slash", "a/b/", "expected element name"},
      {"empty_step", "a//b", "descendant axis"},
      {"leading_descendant", "//a", "descendant axis"},
      {"unbalanced_open", "a[b[c]", "unterminated predicate"},
      {"unbalanced_close", "a]b", "trailing characters"},
      {"empty_predicate", "a[]", "expected element name"},
      {"wildcard", "/a/*", "wildcard"},
      {"attribute_axis", "a[@id]", "attribute axis"},
      {"positional_predicate", "a[1]", "positional"},
      {"unterminated_literal", "a[.=\"x", "unterminated string literal"},
      {"bare_dot_predicate", "a[.]", "expected '='"},
      {"unquoted_literal", "a[.=x]", "expected quoted literal"},
      {"garbage_after_path", "a/b c", "trailing characters"},
      {"oversized_predicate_depth",
       // 300 nested predicates, past the compiler's cap of 128.
       [] {
         std::string q = "a";
         for (int i = 0; i < 300; ++i) q += "[a";
         q.append(300, ']');
         return q;
       }(),
       "nested deeper"},
  };
  for (const Case& c : kCases) {
    LabelDict dict;
    auto twig = CompileXPath(c.input, &dict);
    ASSERT_FALSE(twig.ok()) << c.name << ": accepted " << c.input;
    EXPECT_NE(twig.status().message().find(c.want_message_fragment),
              std::string::npos)
        << c.name << ": diagnostic was '" << twig.status().message() << "'";
  }
}

// Depths at and around the predicate-nesting cap: the boundary must be
// exact — the cap rejects hostile inputs, not legitimate deep queries.
TEST(XPathTest, PredicateDepthBoundary) {
  auto nested = [](int depth) {
    std::string q = "a";
    for (int i = 0; i < depth; ++i) q += "[a";
    q.append(static_cast<size_t>(depth), ']');
    return q;
  };
  {
    LabelDict dict;
    auto at_cap = CompileXPath(nested(128), &dict);
    EXPECT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  }
  {
    LabelDict dict;
    auto past_cap = CompileXPath(nested(129), &dict);
    EXPECT_FALSE(past_cap.ok());
  }
}

// A long path spine is not recursion in the compiler or the renderer;
// both must handle thousands of steps (regression: RenderNode used to
// recurse per step).
TEST(XPathTest, LongPathSpineCompilesAndRenders) {
  std::string q;
  for (int i = 0; i < 5000; ++i) q += "/a";
  LabelDict dict;
  auto twig = CompileXPath(q, &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 5000);
  EXPECT_EQ(TwigToXPath(*twig, dict), q);
}

}  // namespace
}  // namespace treelattice
