#include <string>

#include <gtest/gtest.h>

#include "match/matcher.h"
#include "xml/parser.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

TEST(XPathTest, SimplePath) {
  LabelDict dict;
  auto twig = CompileXPath("/a/b/c", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 3);
  EXPECT_TRUE(twig->IsPath());
  EXPECT_EQ(twig->ToString(dict), "a(b(c))");
}

TEST(XPathTest, RelativePathEqualsAbsolute) {
  LabelDict dict;
  auto absolute = CompileXPath("/a/b", &dict);
  auto relative = CompileXPath("a/b", &dict);
  ASSERT_TRUE(absolute.ok() && relative.ok());
  EXPECT_EQ(absolute->CanonicalCode(), relative->CanonicalCode());
}

TEST(XPathTest, Predicates) {
  LabelDict dict;
  auto twig = CompileXPath("laptop[brand][price]", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "laptop(brand,price)");
}

TEST(XPathTest, PredicateWithPath) {
  LabelDict dict;
  auto twig =
      CompileXPath("/site/open_auctions/open_auction[bidder/time][seller]",
                   &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 6);
  EXPECT_EQ(twig->ToString(dict),
            "site(open_auctions(open_auction(bidder(time),seller)))");
}

TEST(XPathTest, NestedPredicates) {
  LabelDict dict;
  auto twig = CompileXPath("a/b[c[d]/e]", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "a(b(c(d,e)))");
}

TEST(XPathTest, PathContinuesAfterPredicate) {
  LabelDict dict;
  auto twig = CompileXPath("a[x]/b", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->ToString(dict), "a(x,b)");
}

TEST(XPathTest, WhitespaceTolerated) {
  LabelDict dict;
  auto twig = CompileXPath("  a [ b ] / c ", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 3);
}

TEST(XPathTest, RejectsUnsupportedConstructs) {
  LabelDict dict;
  EXPECT_FALSE(CompileXPath("//a", &dict).ok());
  EXPECT_FALSE(CompileXPath("a//b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a/*", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[@id]", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[1]", &dict).ok());
  EXPECT_FALSE(CompileXPath("", &dict).ok());
  EXPECT_FALSE(CompileXPath("   ", &dict).ok());
  EXPECT_FALSE(CompileXPath("a[b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a]b", &dict).ok());
  EXPECT_FALSE(CompileXPath("a/", &dict).ok());
  EXPECT_FALSE(CompileXPath("/a/b/c extra", &dict).ok());
  EXPECT_FALSE(CompileXPath("a", nullptr).ok());
}

TEST(XPathTest, CompiledQueryCountsCorrectly) {
  auto doc = ParseXmlString(
      "<computer><laptops>"
      "<laptop><brand/><price/></laptop>"
      "<laptop><brand/><price/></laptop>"
      "</laptops><desktops/></computer>");
  ASSERT_TRUE(doc.ok());
  MatchCounter counter(*doc);
  auto twig = CompileXPath("laptop[brand][price]", &doc->mutable_dict());
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(counter.Count(*twig), 2u);
}

TEST(XPathTest, RoundTripThroughTwigToXPath) {
  LabelDict dict;
  for (const char* text :
       {"/a/b/c", "/laptop[brand][price]", "/a/b[c[d]/e]",
        "/site/open_auctions/open_auction[bidder/time][seller]"}) {
    auto twig = CompileXPath(text, &dict);
    ASSERT_TRUE(twig.ok()) << text;
    std::string rendered = TwigToXPath(*twig, dict);
    auto reparsed = CompileXPath(rendered, &dict);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(reparsed->CanonicalCode(), twig->CanonicalCode())
        << text << " -> " << rendered;
  }
  Twig empty;
  EXPECT_EQ(TwigToXPath(empty, dict), "");
}

}  // namespace
}  // namespace treelattice
