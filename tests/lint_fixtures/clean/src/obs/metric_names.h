// Minimal clean fixture: tl_lint must exit 0 on this tree.
#ifndef FIXTURE_CLEAN_OBS_METRIC_NAMES_H_
#define FIXTURE_CLEAN_OBS_METRIC_NAMES_H_

inline constexpr char kOnlyMetric[] = "serve.clean.metric";

#endif  // FIXTURE_CLEAN_OBS_METRIC_NAMES_H_
