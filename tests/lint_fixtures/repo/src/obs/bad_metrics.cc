// Fixture for tl_lint's metric-literal and metric-declared rules.
#include "obs/metric_names.h"

struct Registry {
  void* counter(const char* name);
};

void RegisterFixtureMetrics(Registry* registry) {
  registry->counter("x.y");  // LINT-EXPECT[metric-literal]
  registry->counter("x.z");  // tl-lint: allow(metric-literal) -- fixture
  registry->counter(kGood);  // constant: clean

  const char* undeclared = "serve.not.declared";  // LINT-EXPECT[metric-declared]
  const char* waived = "serve.also.not";  // tl-lint: allow(metric-declared) -- fixture
  const char* declared = "serve.good.metric";  // declared above: clean
  (void)undeclared;
  (void)waived;
  (void)declared;
}
