// Fixture for tools/tl_lint.py (driven by tests/tl_lint_fixture_test.py).
// Lines marked LINT-EXPECT[rule] must be reported; their suppressed twins
// must not. This is not real project code.
#ifndef FIXTURE_OBS_METRIC_NAMES_H_
#define FIXTURE_OBS_METRIC_NAMES_H_

inline constexpr char kGood[] = "serve.good.metric";
inline constexpr char kBadCase[] = "Serve.BadName";  // LINT-EXPECT[metric-name]
inline constexpr char kWeird[] = "serve.WEIRD";  // tl-lint: allow(metric-name) -- fixture: suppression must win
inline constexpr char kDup[] = "serve.good.metric";  // LINT-EXPECT[metric-name]

#endif  // FIXTURE_OBS_METRIC_NAMES_H_
