// Fixture half of a deliberate module include cycle (alpha <-> beta); the
// driver expects exactly one include-cycle finding for it.
#ifndef FIXTURE_ALPHA_A_H_
#define FIXTURE_ALPHA_A_H_
#include "beta/b.h"
#endif  // FIXTURE_ALPHA_A_H_
