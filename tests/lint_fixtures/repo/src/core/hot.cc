// Fixture for tl_lint's naked-new, string-key-map, and canonical-in-loop
// rules (src/core is a hot-path directory).
#include <string>
#include <unordered_map>

struct Twig {
  unsigned long CanonicalHash() const { return 0; }
};

int* Leak() {
  return new int(3);  // LINT-EXPECT[naked-new]
}

int* Intentional() {
  return new int(4);  // tl-lint: allow(naked-new) -- fixture
}

std::unordered_map<std::string, int> bad_map;  // LINT-EXPECT[string-key-map]
std::unordered_map<std::string, int> ok_map;  // tl-lint: allow(string-key-map) -- fixture

unsigned long SumHashes(const Twig& twig, int n) {
  unsigned long total = 0;
  for (int i = 0; i < n; ++i) {
    total += twig.CanonicalHash();  // LINT-EXPECT[canonical-in-loop]
  }
  for (int i = 0; i < n; ++i) {
    total += twig.CanonicalHash();  // tl-lint: allow(canonical-in-loop) -- fixture
  }
  total += twig.CanonicalHash();  // outside any loop: clean
  return total;
}
