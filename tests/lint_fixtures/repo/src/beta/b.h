// Fixture half of a deliberate module include cycle (alpha <-> beta).
#ifndef FIXTURE_BETA_B_H_
#define FIXTURE_BETA_B_H_
#include "alpha/a.h"
#endif  // FIXTURE_BETA_B_H_
