// Fixture for tl_lint's blocking-syscall rule (this path is on the rule's
// event-loop file list). tl_lint matches text, never compiles, so the
// fixture declares nothing.

void FixtureLoop(int fd) {
  char buf[16];
  long n = read(fd, buf, sizeof(buf));  // LINT-EXPECT[blocking-syscall]
  long k = recv(fd, buf, sizeof(buf), MSG_DONTWAIT);  // cannot block: clean
  int c = accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);  // clean
  usleep(1);  // tl-lint: allow(blocking-syscall) -- fixture
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // LINT-EXPECT[blocking-syscall]
  (void)n;
  (void)k;
  (void)c;
}
