// Tests pinning the paper's formal results to the implementation:
// Theorem 1 (augmented-twig expectation), Lemma 1 (general overlap),
// Lemma 3 (fixed-size product formula), Lemma 4 (Markov reduction, also
// covered in estimator_test), and the exactness relationships between the
// estimators on independence-by-construction documents.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/fixed_size_estimator.h"
#include "core/markov_path_estimator.h"
#include "core/recursive_estimator.h"
#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "twig/decompose.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

LatticeSummary MustBuild(const Document& doc, int level) {
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return std::move(summary).value();
}

// Theorem 1: for twigs T1 = T + e1, T2 = T + e2 differing in one edge, the
// expected count of T1 ∪ T2 under conditional independence is
// s(T1)*s(T2)/s(T). Build a document where the independence holds exactly
// *per node* (every x has the same joint child distribution) and check the
// estimator against a hand computation.
TEST(Theorem1Test, AugmentedTwigExpectation) {
  // 12 x's: each independently has a y-child w.p. 1/2 and a z-child w.p.
  // 1/3 — realized exactly as counts: 6 have y, 4 have z, 2 have both
  // (6*4/12 = 2: independence holds exactly in the counts).
  std::string xml = "<r>";
  for (int i = 0; i < 2; ++i) xml += "<x><y/><z/></x>";
  for (int i = 0; i < 4; ++i) xml += "<x><y/></x>";
  for (int i = 0; i < 2; ++i) xml += "<x><z/></x>";
  for (int i = 0; i < 4; ++i) xml += "<x/>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);

  // s(x(y)) = 6, s(x(z)) = 4, s(x) = 12, true s(x(y,z)) = 2 = 6*4/12.
  EXPECT_EQ(counter.Count(MustParse("x(y)", dict)), 6u);
  EXPECT_EQ(counter.Count(MustParse("x(z)", dict)), 4u);
  EXPECT_EQ(counter.Count(MustParse("x(y,z)", dict)), 2u);

  LatticeSummary summary = MustBuild(*doc, 2);
  RecursiveDecompositionEstimator estimator(&summary);
  auto estimate = estimator.Estimate(MustParse("x(y,z)", dict));
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-12);
}

// Lemma 1 with a larger overlap: T1 and T2 share a 2-node common part.
TEST(Lemma1Test, LargerOverlapDecomposition) {
  // Every a(b) pair: b has y w.p. realized 1/2, and a has c w.p. 1/2,
  // jointly independent: 8 a's, 4 with c; each a has one b; 4 b's have y;
  // exactly 2 a's have both c and b(y).
  std::string xml = "<r>";
  xml += "<a><c/><b><y/></b></a><a><c/><b><y/></b></a>";   // both
  xml += "<a><c/><b/></a><a><c/><b/></a>";                 // c only
  xml += "<a><b><y/></b></a><a><b><y/></b></a>";           // y only
  xml += "<a><b/></a><a><b/></a>";                         // neither
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);
  Twig query = MustParse("a(c,b(y))", dict);  // size 4
  EXPECT_EQ(counter.Count(query), 2u);

  LatticeSummary summary = MustBuild(*doc, 3);
  ASSERT_FALSE(summary.Contains(query));
  RecursiveDecompositionEstimator estimator(&summary);
  // s(a(c,b)) * s(a(b(y))) / s(a(b)) = 4 * 4 / 8 = 2.
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-12);
}

// Lemma 3: the fixed-size estimator must equal the explicit product
// formula computed by hand from the cover steps.
class Lemma3Property : public testing::TestWithParam<int> {};

TEST_P(Lemma3Property, EstimateEqualsProductFormula) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed + 500;
  tree.num_nodes = 100;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);
  FixedSizeDecompositionEstimator estimator(&summary);

  WorkloadOptions wl;
  wl.seed = seed;
  wl.query_size = 6;
  wl.num_queries = 10;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    auto steps = FixedSizeCover(q, 3);
    ASSERT_TRUE(steps.ok());
    double expected = 0.0;
    bool zero = false;
    {
      auto lookup = [&](const Twig& t) {
        auto c = summary.Lookup(t);
        return c ? double(*c) : 0.0;
      };
      expected = lookup((*steps)[0].subtree);
      if (expected <= 0) zero = true;
      for (size_t i = 1; i < steps->size() && !zero; ++i) {
        double numer = lookup((*steps)[i].subtree);
        double denom = lookup((*steps)[i].overlap);
        if (numer <= 0 || denom <= 0) {
          zero = true;
          break;
        }
        expected *= numer / denom;
      }
    }
    auto estimate = estimator.Estimate(q);
    ASSERT_TRUE(estimate.ok());
    if (zero) {
      EXPECT_EQ(*estimate, 0.0);
    } else {
      EXPECT_NEAR(*estimate, expected, 1e-9 * (1 + expected))
          << q.ToDebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma3Property, testing::Range(0, 10));

// On a document whose branches are jointly independent by construction,
// recursive and fixed-size estimates agree with each other and with the
// truth for out-of-lattice queries.
TEST(EstimatorAgreementTest, IndependentDocument) {
  std::string xml = "<r>";
  for (int i = 0; i < 6; ++i) xml += "<x><y><u/></y><z><v/></z><w/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);
  LatticeSummary summary = MustBuild(*doc, 3);

  RecursiveDecompositionEstimator recursive(&summary);
  FixedSizeDecompositionEstimator fixed(&summary);
  for (const char* text :
       {"x(y(u),z(v))", "x(y,z,w)", "x(y(u),z,w)", "r(x(y(u),z(v)))"}) {
    Twig q = MustParse(text, dict);
    double truth = static_cast<double>(counter.Count(q));
    auto r = recursive.Estimate(q);
    auto f = fixed.Estimate(q);
    ASSERT_TRUE(r.ok() && f.ok());
    EXPECT_NEAR(*r, truth, 1e-9) << text;
    EXPECT_NEAR(*f, truth, 1e-9) << text;
  }
}

// Markov order option: with order 2, the path estimator is the classic
// first-order Markov chain over edge counts.
TEST(MarkovOrderTest, OrderTwoUsesEdgeCounts) {
  auto doc = ParseXmlString(
      "<r><a><b><c/></b></a><a><b/></a><a><b><c/></b></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  MarkovPathEstimator::Options options;
  options.order = 2;
  MarkovPathEstimator markov(&summary, options);
  // f(r/a/b/c) = f(r/a)*f(a/b)/f(a)*f(b/c)/f(b) = 3 * 3/3 * 2/3 = 2.
  auto estimate = markov.Estimate(MustParse("r(a(b(c)))", dict));
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-12);
}

// The fixed-size estimator with k smaller than the lattice level must
// still be consistent (it just uses smaller windows).
TEST(FixedSizeKOptionTest, SmallerKIsMarkovLike) {
  RandomTreeOptions tree;
  tree.seed = 9;
  tree.num_nodes = 120;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 4);
  FixedSizeDecompositionEstimator::Options options;
  options.k = 2;
  FixedSizeDecompositionEstimator fixed2(&summary, options);
  MarkovPathEstimator::Options markov_options;
  markov_options.order = 2;
  MarkovPathEstimator markov(&summary, markov_options);

  WorkloadOptions wl;
  wl.seed = 77;
  wl.query_size = 5;
  wl.num_queries = 30;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    if (!q.IsPath()) continue;
    // Both reduce to the order-2 Markov estimate on paths... except that
    // in-lattice paths are answered exactly by fixed2's short-circuit.
    if (summary.Contains(q)) continue;
    auto a = fixed2.Estimate(q);
    auto b = markov.Estimate(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-9 * (1 + *b)) << q.ToDebugString();
  }
}

// Occurrence is monotone under sub-twig removal: if a twig matches, every
// sub-twig obtained by removing a degree-1 node matches too (the Apriori
// property the miner relies on). Note the *counts* themselves are not
// ordered — a(b) can have more matches than a.
class OccurrenceMonotoneProperty : public testing::TestWithParam<int> {};

TEST_P(OccurrenceMonotoneProperty, SubTwigsOfOccurringTwigsOccur) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed + 900;
  tree.num_nodes = 80;
  tree.num_labels = 3;
  Document doc = GenerateRandomTree(tree);
  MatchCounter counter(doc);

  WorkloadOptions wl;
  wl.seed = seed;
  wl.query_size = 5;
  wl.num_queries = 10;
  wl.allow_duplicate_siblings = true;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    ASSERT_GT(counter.Count(q), 0u);  // positive workload
    for (int node : q.RemovableNodes()) {
      Result<Twig> sub = q.RemoveNode(node);
      ASSERT_TRUE(sub.ok());
      EXPECT_GT(counter.Count(*sub), 0u) << q.ToDebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OccurrenceMonotoneProperty,
                         testing::Range(0, 15));

}  // namespace
}  // namespace treelattice
