#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimate_scratch.h"
#include "core/exact_estimator.h"
#include "core/fixed_size_estimator.h"
#include "core/markov_path_estimator.h"
#include "core/recursive_estimator.h"
#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "twig/decompose.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

LatticeSummary MustBuild(const Document& doc, int level) {
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return std::move(summary).value();
}

TEST(RecursiveEstimatorTest, InLatticeQueriesAreExact) {
  auto doc = ParseXmlString(
      "<r><a><b/><c/></a><a><b/></a><a><b/><c/><c/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 4);
  MatchCounter counter(*doc);
  RecursiveDecompositionEstimator estimator(&summary);

  for (const char* q : {"a", "a(b)", "a(b,c)", "a(c,c)", "r(a,a)"}) {
    Twig query = MustParse(q, dict);
    auto estimate = estimator.Estimate(query);
    ASSERT_TRUE(estimate.ok());
    EXPECT_DOUBLE_EQ(*estimate, static_cast<double>(counter.Count(query)))
        << q;
  }
}

TEST(RecursiveEstimatorTest, MissingLabelGivesZero) {
  auto doc = ParseXmlString("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 4);
  RecursiveDecompositionEstimator estimator(&summary);
  Twig query = MustParse("r(zzz)", dict);
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0.0);
}

TEST(RecursiveEstimatorTest, EmptyQueryRejected) {
  Document doc;
  doc.AddNode("r", kInvalidNode);
  LatticeSummary summary = MustBuild(doc, 4);
  RecursiveDecompositionEstimator estimator(&summary);
  Twig empty;
  EXPECT_FALSE(estimator.Estimate(empty).ok());
}

// Theorem 1 sanity: when the document satisfies conditional independence
// exactly, the decomposition estimate of an out-of-lattice query equals the
// true count. Construct: every x has exactly 1 y-child and 1 z-child; y has
// 1 w-child. Query x(y(w),z) of size 4 against a 3-lattice.
TEST(RecursiveEstimatorTest, ExactUnderConditionalIndependence) {
  std::string xml = "<r>";
  for (int i = 0; i < 5; ++i) xml += "<x><y><w/></y><z/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  MatchCounter counter(*doc);
  RecursiveDecompositionEstimator estimator(&summary);

  Twig query = MustParse("x(y(w),z)", dict);
  ASSERT_FALSE(summary.Contains(query));  // size 4 > 3-lattice
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, static_cast<double>(counter.Count(query)), 1e-9);
}

// Lemma 1 arithmetic check on the paper's formula: s(T1 u T2) =
// s(T1) * s(T2) / s(T).
TEST(RecursiveEstimatorTest, Lemma1Formula) {
  // Document: 10 a's; 4 have a b child; 5 have a c child; independence does
  // NOT hold (correlation planted), so the estimate differs from truth in a
  // predictable way: est = s(a(b)) * s(a(c)) / s(a) = 4 * 5 / 10 = 2.
  std::string xml = "<r>";
  for (int i = 0; i < 4; ++i) xml += "<a><b/></a>";   // b only
  for (int i = 0; i < 5; ++i) xml += "<a><c/></a>";   // c only
  xml += "<a/>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 2);
  RecursiveDecompositionEstimator estimator(&summary);

  Twig query = MustParse("a(b,c)", dict);
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 2.0, 1e-9);  // true count is 0; formula gives 2
}

TEST(FixedSizeEstimatorTest, InLatticeQueriesAreExact) {
  auto doc = ParseXmlString(
      "<r><a><b/><c/></a><a><b/></a><a><b/><c/><c/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 4);
  MatchCounter counter(*doc);
  FixedSizeDecompositionEstimator estimator(&summary);

  for (const char* q : {"a", "a(b)", "a(b,c)", "r(a,a)"}) {
    Twig query = MustParse(q, dict);
    auto estimate = estimator.Estimate(query);
    ASSERT_TRUE(estimate.ok());
    EXPECT_DOUBLE_EQ(*estimate, static_cast<double>(counter.Count(query)))
        << q;
  }
}

TEST(FixedSizeEstimatorTest, ExactUnderConditionalIndependence) {
  std::string xml = "<r>";
  for (int i = 0; i < 7; ++i) xml += "<x><y><w/></y><z/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  MatchCounter counter(*doc);
  FixedSizeDecompositionEstimator estimator(&summary);

  Twig query = MustParse("x(y(w),z)", dict);
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, static_cast<double>(counter.Count(query)), 1e-9);
}

TEST(FixedSizeEstimatorTest, ZeroWhenPieceMissing) {
  auto doc = ParseXmlString("<r><a><b/></a><c/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 2);
  FixedSizeDecompositionEstimator estimator(&summary);
  // a(c) never occurs, so r(a(c)) must estimate 0.
  Twig query = MustParse("r(a(c))", dict);
  auto estimate = estimator.Estimate(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0.0);
}

// Lemma 4: on path queries, both decomposition estimators coincide with the
// explicit Markov-model formula.
class MarkovEquivalence : public testing::TestWithParam<int> {};

TEST_P(MarkovEquivalence, PathEstimatesMatchMarkovFormula) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed;
  tree.num_nodes = 150;
  tree.num_labels = 4;
  tree.max_depth = 10;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);

  RecursiveDecompositionEstimator recursive(&summary);
  RecursiveDecompositionEstimator voting(
      &summary, RecursiveDecompositionEstimator::Options{true, 0});
  FixedSizeDecompositionEstimator fixed(&summary);
  MarkovPathEstimator markov(&summary);

  // Sample path queries of length 4..6 from the document.
  WorkloadOptions wl;
  wl.seed = seed + 1;
  wl.num_queries = 30;
  for (int size = 4; size <= 6; ++size) {
    wl.query_size = size;
    auto queries = GeneratePositiveWorkload(doc, wl);
    ASSERT_TRUE(queries.ok());
    for (const Twig& q : *queries) {
      if (!q.IsPath()) continue;
      auto m = markov.Estimate(q);
      auto r = recursive.Estimate(q);
      auto v = voting.Estimate(q);
      auto f = fixed.Estimate(q);
      ASSERT_TRUE(m.ok() && r.ok() && v.ok() && f.ok());
      EXPECT_NEAR(*r, *m, 1e-6 * (1.0 + *m)) << q.ToDebugString();
      EXPECT_NEAR(*v, *m, 1e-6 * (1.0 + *m)) << q.ToDebugString();
      EXPECT_NEAR(*f, *m, 1e-6 * (1.0 + *m)) << q.ToDebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkovEquivalence, testing::Range(0, 10));

TEST(MarkovPathEstimatorTest, RejectsBranchingQueries) {
  Document doc;
  NodeId r = doc.AddNode("r", kInvalidNode);
  doc.AddNode("a", r);
  LatticeSummary summary = MustBuild(doc, 2);
  MarkovPathEstimator markov(&summary);
  LabelDict dict = doc.dict();
  Twig branching = MustParse("r(a,a)", &dict);
  EXPECT_FALSE(markov.Estimate(branching).ok());
}

TEST(MarkovPathEstimatorTest, ShortPathIsDirectLookup) {
  auto doc = ParseXmlString("<r><a><b/></a><a><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  MarkovPathEstimator markov(&summary);
  auto estimate = markov.Estimate(MustParse("a(b)", dict));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 2.0);
}

// Voting: all leaf-pair estimates are averaged. Construct a case with two
// distinct leaf pairs whose estimates differ, and verify the voting result
// lies strictly between the individual ones.
TEST(VotingTest, AveragesAcrossLeafPairs) {
  std::string xml = "<r>";
  for (int i = 0; i < 6; ++i) xml += "<a><b/><b/><c/></a>";
  for (int i = 0; i < 3; ++i) xml += "<a><b/><d><c/></d></a>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  MatchCounter counter(*doc);

  RecursiveDecompositionEstimator plain(&summary);
  RecursiveDecompositionEstimator voting(
      &summary, RecursiveDecompositionEstimator::Options{true, 0});
  RecursiveDecompositionEstimator capped(
      &summary, RecursiveDecompositionEstimator::Options{true, 1});

  Twig query = MustParse("a(b,b,d(c))", dict);
  ASSERT_GT(ValidLeafPairs(query).size(), 1u);
  auto p = plain.Estimate(query);
  auto v = voting.Estimate(query);
  auto c = capped.Estimate(query);
  ASSERT_TRUE(p.ok() && v.ok() && c.ok());
  // Capped at one vote == plain first-pair behaviour.
  EXPECT_DOUBLE_EQ(*c, *p);
  // All estimates are finite and non-negative.
  EXPECT_GE(*v, 0.0);
  EXPECT_TRUE(std::isfinite(*v));
}

TEST(VotingTest, MedianAggregationDiffersAndIsFinite) {
  RandomTreeOptions tree;
  tree.seed = 41;
  tree.num_nodes = 150;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);
  MatchCounter counter(doc);

  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  RecursiveDecompositionEstimator mean(&summary,
                                       Options{true, 0, Agg::kMean});
  RecursiveDecompositionEstimator median(&summary,
                                         Options{true, 0, Agg::kMedian});
  EXPECT_EQ(mean.name(), "recursive+voting");
  EXPECT_EQ(median.name(), "recursive+voting-median");

  WorkloadOptions wl;
  wl.seed = 17;
  wl.query_size = 6;
  wl.num_queries = 20;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  int different = 0;
  for (const Twig& q : *queries) {
    auto a = mean.Estimate(q);
    auto b = median.Estimate(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(std::isfinite(*b));
    EXPECT_GE(*b, 0.0);
    if (std::abs(*a - *b) > 1e-9) ++different;
    // In-lattice sub-twigs anchor both, so on in-lattice queries they
    // coincide exactly.
    if (summary.Contains(q)) {
      EXPECT_DOUBLE_EQ(*a, *b);
    }
  }
  // The aggregation rule must actually matter somewhere in the workload.
  EXPECT_GT(different, 0);
}

TEST(VotingTest, MedianWithSinglePairEqualsPlain) {
  // A path has exactly one leaf pair: mean, median and no-voting coincide.
  auto doc = ParseXmlString("<r><a><b><c/></b></a><a><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 2);
  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  RecursiveDecompositionEstimator plain(&summary);
  RecursiveDecompositionEstimator median(&summary,
                                         Options{true, 0, Agg::kMedian});
  Twig query = MustParse("r(a(b(c)))", dict);
  auto a = plain.Estimate(query);
  auto b = median.Estimate(query);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

// Property: on random documents, every estimator answers in-lattice
// queries exactly, and out-of-lattice estimates are finite & non-negative.
TEST(EstimateScratchTest, ExplicitSharedAndImplicitScratchAgreeBitwise) {
  // The reusable scratch is a pure working-memory optimization: the same
  // query must produce the exact same bits whether the caller passes a
  // fresh scratch, reuses one scratch across many different queries
  // (memo and buffers warm), or passes none (internal thread-local) —
  // for both the voting recursive estimator and the fixed-size one.
  auto doc = ParseXmlString(
      "<r><x><y><w/></y><z/></x><x><y><w/><w/></y><z/><z/></x>"
      "<x><y/><z/></x><x><y><w/></y></x></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);

  RecursiveDecompositionEstimator::Options voting_options;
  voting_options.voting = true;
  RecursiveDecompositionEstimator voting(&summary, voting_options);
  FixedSizeDecompositionEstimator::Options fixed_options;
  fixed_options.k = 3;
  FixedSizeDecompositionEstimator fixed(&summary, fixed_options);

  std::vector<Twig> queries;
  for (const char* q :
       {"x(y(w),z)", "x(y,z,z)", "r(x(y),x(z))", "x(y(w,w),z)",
        "r(x,x,x)", "x(y(w),z,z)"}) {
    queries.push_back(MustParse(q, dict));
  }

  EstimateScratch shared;
  EstimateOptions with_shared;
  with_shared.scratch = &shared;
  for (const Twig& query : queries) {
    Result<double> bare = voting.Estimate(query);
    EstimateScratch fresh;
    EstimateOptions with_fresh;
    with_fresh.scratch = &fresh;
    Result<double> from_fresh = voting.Estimate(query, with_fresh);
    Result<double> from_shared = voting.Estimate(query, with_shared);
    ASSERT_TRUE(bare.ok() && from_fresh.ok() && from_shared.ok());
    // Bitwise: the scratch may never change an estimate value.
    EXPECT_EQ(*bare, *from_fresh);
    EXPECT_EQ(*bare, *from_shared);

    Result<double> fixed_bare = fixed.Estimate(query);
    Result<double> fixed_shared = fixed.Estimate(query, with_shared);
    ASSERT_TRUE(fixed_bare.ok() && fixed_shared.ok());
    EXPECT_EQ(*fixed_bare, *fixed_shared);
  }

  // Re-running the whole workload against the warm shared scratch must
  // still reproduce every value (the per-query memo reset is what keeps
  // results independent of scratch history).
  for (const Twig& query : queries) {
    Result<double> bare = voting.Estimate(query);
    Result<double> warm = voting.Estimate(query, with_shared);
    ASSERT_TRUE(bare.ok() && warm.ok());
    EXPECT_EQ(*bare, *warm);
  }
}

class EstimatorProperty : public testing::TestWithParam<int> {};

TEST_P(EstimatorProperty, ExactInLatticeFiniteBeyond) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed + 1000;
  tree.num_nodes = 120;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 4);
  MatchCounter counter(doc);

  RecursiveDecompositionEstimator recursive(&summary);
  RecursiveDecompositionEstimator voting(
      &summary, RecursiveDecompositionEstimator::Options{true, 0});
  FixedSizeDecompositionEstimator fixed(&summary);
  SelectivityEstimator* estimators[] = {&recursive, &voting, &fixed};

  WorkloadOptions wl;
  wl.seed = seed;
  wl.num_queries = 15;
  for (int size = 2; size <= 7; ++size) {
    wl.query_size = size;
    auto queries = GeneratePositiveWorkload(doc, wl);
    ASSERT_TRUE(queries.ok());
    for (const Twig& q : *queries) {
      double truth = static_cast<double>(counter.Count(q));
      for (SelectivityEstimator* estimator : estimators) {
        auto estimate = estimator->Estimate(q);
        ASSERT_TRUE(estimate.ok()) << estimator->name();
        EXPECT_GE(*estimate, 0.0);
        EXPECT_TRUE(std::isfinite(*estimate));
        if (size <= 4) {
          EXPECT_NEAR(*estimate, truth, 1e-9)
              << estimator->name() << " " << q.ToDebugString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorProperty, testing::Range(0, 12));

TEST(ExactEstimatorTest, MatchesCounter) {
  auto doc = ParseXmlString("<r><a><b/></a><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  ExactEstimator exact(*doc);
  auto estimate = exact.Estimate(MustParse("a(b)", dict));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 1.0);
  Twig empty;
  EXPECT_FALSE(exact.Estimate(empty).ok());
  EXPECT_EQ(exact.name(), "exact");
}

}  // namespace
}  // namespace treelattice
