#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "summary/lattice_summary.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LatticeSummaryTest, InsertAndLookup) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t = MustParse("a(b,c)", &dict);
  ASSERT_TRUE(summary.Insert(t, 42).ok());
  auto count = summary.Lookup(t);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 42u);
  EXPECT_TRUE(summary.Contains(t));
}

TEST(LatticeSummaryTest, LookupIsOrderInsensitive) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a(b,c)", &dict), 7).ok());
  auto count = summary.Lookup(MustParse("a(c,b)", &dict));
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 7u);
}

TEST(LatticeSummaryTest, MissingLookup) {
  LabelDict dict;
  LatticeSummary summary(4);
  EXPECT_FALSE(summary.Lookup(MustParse("a", &dict)).has_value());
  EXPECT_FALSE(summary.LookupCode("0(1)").has_value());
}

TEST(LatticeSummaryTest, InsertValidation) {
  LabelDict dict;
  LatticeSummary summary(3);
  Twig too_big = MustParse("a(b(c(d)))", &dict);
  EXPECT_FALSE(summary.Insert(too_big, 1).ok());
  Twig empty;
  EXPECT_FALSE(summary.Insert(empty, 1).ok());
  EXPECT_FALSE(summary.Insert(MustParse("a", &dict), 0).ok());
}

TEST(LatticeSummaryTest, InsertOverwrites) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t = MustParse("a", &dict);
  ASSERT_TRUE(summary.Insert(t, 1).ok());
  ASSERT_TRUE(summary.Insert(t, 2).ok());
  EXPECT_EQ(*summary.Lookup(t), 2u);
  EXPECT_EQ(summary.NumPatterns(), 1u);
}

TEST(LatticeSummaryTest, LevelsTrackSizes) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 5).ok());
  ASSERT_TRUE(summary.Insert(MustParse("b", &dict), 3).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 2).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b,b)", &dict), 1).ok());
  EXPECT_EQ(summary.NumPatterns(1), 2u);
  EXPECT_EQ(summary.NumPatterns(2), 1u);
  EXPECT_EQ(summary.NumPatterns(3), 1u);
  EXPECT_EQ(summary.NumPatterns(4), 0u);
  EXPECT_EQ(summary.NumPatterns(), 4u);
  EXPECT_TRUE(summary.PatternsAtLevel(99).empty());
}

TEST(LatticeSummaryTest, MemoryBytesTracksInsertions) {
  LabelDict dict;
  LatticeSummary summary(4);
  EXPECT_EQ(summary.MemoryBytes(), 0u);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 5).ok());
  size_t one = summary.MemoryBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 5).ok());
  EXPECT_GT(summary.MemoryBytes(), one);
}

TEST(LatticeSummaryTest, EraseRemovesAndAdjustsCompleteness) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t3 = MustParse("a(b(c))", &dict);
  ASSERT_TRUE(summary.Insert(t3, 9).ok());
  summary.set_complete_through_level(4);
  size_t before = summary.MemoryBytes();
  ASSERT_TRUE(summary.Erase(t3.CanonicalCode()).ok());
  EXPECT_FALSE(summary.Contains(t3));
  EXPECT_LT(summary.MemoryBytes(), before);
  EXPECT_EQ(summary.complete_through_level(), 2);
  EXPECT_EQ(summary.Erase(t3.CanonicalCode()).code(), StatusCode::kNotFound);
}

TEST(LatticeSummaryTest, EraseRejectsLowLevels) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t1 = MustParse("a", &dict);
  Twig t2 = MustParse("a(b)", &dict);
  ASSERT_TRUE(summary.Insert(t1, 1).ok());
  ASSERT_TRUE(summary.Insert(t2, 1).ok());
  EXPECT_FALSE(summary.Erase(t1.CanonicalCode()).ok());
  EXPECT_FALSE(summary.Erase(t2.CanonicalCode()).ok());
}

TEST(LatticeSummaryTest, SaveLoadRoundTrip) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 10).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 6).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b,c(d))", &dict), 2).ok());
  summary.set_complete_through_level(3);

  std::string path = testing::TempDir() + "/tl_summary_test.txt";
  ASSERT_TRUE(summary.SaveToFile(path).ok());
  Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->max_level(), 4);
  EXPECT_EQ(loaded->complete_through_level(), 3);
  EXPECT_EQ(loaded->NumPatterns(), 3u);
  EXPECT_EQ(*loaded->Lookup(MustParse("a(b,c(d))", &dict)), 2u);
  EXPECT_EQ(loaded->MemoryBytes(), summary.MemoryBytes());
}

TEST(LatticeSummaryTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/tl_summary_bad.txt";
  {
    std::ofstream out(path);
    out << "NOT A SUMMARY\n";
  }
  auto result = LatticeSummary::LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(LatticeSummary::LoadFromFile("/nonexistent/summary").ok());
}

TEST(LatticeSummaryTest, MinimumMaxLevelIsTwo) {
  LatticeSummary summary(0);
  EXPECT_EQ(summary.max_level(), 2);
}

}  // namespace
}  // namespace treelattice
