#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "summary/lattice_summary.h"
#include "util/hash.h"

#include <vector>

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(LatticeSummaryTest, InsertAndLookup) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t = MustParse("a(b,c)", &dict);
  ASSERT_TRUE(summary.Insert(t, 42).ok());
  auto count = summary.Lookup(t);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 42u);
  EXPECT_TRUE(summary.Contains(t));
}

TEST(LatticeSummaryTest, LookupIsOrderInsensitive) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a(b,c)", &dict), 7).ok());
  auto count = summary.Lookup(MustParse("a(c,b)", &dict));
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 7u);
}

TEST(LatticeSummaryTest, MissingLookup) {
  LabelDict dict;
  LatticeSummary summary(4);
  EXPECT_FALSE(summary.Lookup(MustParse("a", &dict)).has_value());
  EXPECT_FALSE(summary.LookupCode("0(1)").has_value());
}

TEST(LatticeSummaryTest, InsertValidation) {
  LabelDict dict;
  LatticeSummary summary(3);
  Twig too_big = MustParse("a(b(c(d)))", &dict);
  EXPECT_FALSE(summary.Insert(too_big, 1).ok());
  Twig empty;
  EXPECT_FALSE(summary.Insert(empty, 1).ok());
  EXPECT_FALSE(summary.Insert(MustParse("a", &dict), 0).ok());
}

TEST(LatticeSummaryTest, InsertOverwrites) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t = MustParse("a", &dict);
  ASSERT_TRUE(summary.Insert(t, 1).ok());
  ASSERT_TRUE(summary.Insert(t, 2).ok());
  EXPECT_EQ(*summary.Lookup(t), 2u);
  EXPECT_EQ(summary.NumPatterns(), 1u);
}

TEST(LatticeSummaryTest, LevelsTrackSizes) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 5).ok());
  ASSERT_TRUE(summary.Insert(MustParse("b", &dict), 3).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 2).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b,b)", &dict), 1).ok());
  EXPECT_EQ(summary.NumPatterns(1), 2u);
  EXPECT_EQ(summary.NumPatterns(2), 1u);
  EXPECT_EQ(summary.NumPatterns(3), 1u);
  EXPECT_EQ(summary.NumPatterns(4), 0u);
  EXPECT_EQ(summary.NumPatterns(), 4u);
  EXPECT_TRUE(summary.PatternsAtLevel(99).empty());
}

TEST(LatticeSummaryTest, MemoryBytesTracksInsertions) {
  LabelDict dict;
  LatticeSummary summary(4);
  EXPECT_EQ(summary.MemoryBytes(), 0u);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 5).ok());
  size_t one = summary.MemoryBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 5).ok());
  EXPECT_GT(summary.MemoryBytes(), one);
}

TEST(LatticeSummaryTest, EraseRemovesAndAdjustsCompleteness) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t3 = MustParse("a(b(c))", &dict);
  ASSERT_TRUE(summary.Insert(t3, 9).ok());
  summary.set_complete_through_level(4);
  size_t before = summary.MemoryBytes();
  ASSERT_TRUE(summary.Erase(t3.CanonicalCode()).ok());
  EXPECT_FALSE(summary.Contains(t3));
  EXPECT_LT(summary.MemoryBytes(), before);
  EXPECT_EQ(summary.complete_through_level(), 2);
  EXPECT_EQ(summary.Erase(t3.CanonicalCode()).code(), StatusCode::kNotFound);
}

TEST(LatticeSummaryTest, EraseRejectsLowLevels) {
  LabelDict dict;
  LatticeSummary summary(4);
  Twig t1 = MustParse("a", &dict);
  Twig t2 = MustParse("a(b)", &dict);
  ASSERT_TRUE(summary.Insert(t1, 1).ok());
  ASSERT_TRUE(summary.Insert(t2, 1).ok());
  EXPECT_FALSE(summary.Erase(t1.CanonicalCode()).ok());
  EXPECT_FALSE(summary.Erase(t2.CanonicalCode()).ok());
}

TEST(LatticeSummaryTest, SaveLoadRoundTrip) {
  LabelDict dict;
  LatticeSummary summary(4);
  ASSERT_TRUE(summary.Insert(MustParse("a", &dict), 10).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b)", &dict), 6).ok());
  ASSERT_TRUE(summary.Insert(MustParse("a(b,c(d))", &dict), 2).ok());
  summary.set_complete_through_level(3);

  std::string path = testing::TempDir() + "/tl_summary_test.txt";
  ASSERT_TRUE(summary.SaveToFile(path).ok());
  Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->max_level(), 4);
  EXPECT_EQ(loaded->complete_through_level(), 3);
  EXPECT_EQ(loaded->NumPatterns(), 3u);
  EXPECT_EQ(*loaded->Lookup(MustParse("a(b,c(d))", &dict)), 2u);
  EXPECT_EQ(loaded->MemoryBytes(), summary.MemoryBytes());
}

TEST(LatticeSummaryTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/tl_summary_bad.txt";
  {
    std::ofstream out(path);
    out << "NOT A SUMMARY\n";
  }
  auto result = LatticeSummary::LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(LatticeSummary::LoadFromFile("/nonexistent/summary").ok());
}

TEST(LatticeSummaryTest, MinimumMaxLevelIsTwo) {
  LatticeSummary summary(0);
  EXPECT_EQ(summary.max_level(), 2);
}

TEST(LatticeSummaryTest, FlatTableSurvivesGrowthAndChurn) {
  // Many inserts force repeated slot-table rehashes; every pattern must
  // stay findable by twig, by code, and by precomputed hash afterwards,
  // and erase/reinsert churn (tombstones) must not lose probe chains.
  LatticeSummary summary(4);
  std::vector<std::string> codes;
  for (int i = 0; i < 500; ++i) {
    Twig t;
    int root = t.AddNode(i, -1);
    t.AddNode(i + 1000, root);
    t.AddNode(i + 2000, root);
    ASSERT_TRUE(summary.Insert(t, static_cast<uint64_t>(i) + 1).ok());
    codes.push_back(t.CanonicalCode());
  }
  ASSERT_EQ(summary.NumPatterns(), 500u);
  for (int i = 0; i < 500; ++i) {
    const std::string& code = codes[static_cast<size_t>(i)];
    const uint64_t want = static_cast<uint64_t>(i) + 1;
    ASSERT_EQ(summary.LookupCode(code), std::optional<uint64_t>(want));
    ASSERT_EQ(summary.LookupHashed(HashBytes(code), code),
              std::optional<uint64_t>(want));
    PatternId id = summary.FindId(HashBytes(code), code);
    ASSERT_NE(id, kInvalidPatternId);
    ASSERT_EQ(summary.CountOf(id), want);
  }

  // Erase every other pattern, then verify survivors and reinsert one.
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(summary.Erase(codes[static_cast<size_t>(i)]).ok());
  }
  EXPECT_EQ(summary.NumPatterns(), 250u);
  for (int i = 0; i < 500; ++i) {
    const std::string& code = codes[static_cast<size_t>(i)];
    if (i % 2 == 0) {
      EXPECT_FALSE(summary.LookupCode(code).has_value());
      EXPECT_EQ(summary.FindId(HashBytes(code), code), kInvalidPatternId);
    } else {
      EXPECT_TRUE(summary.LookupCode(code).has_value());
    }
  }
  Twig again;
  int root = again.AddNode(0, -1);
  again.AddNode(1000, root);
  again.AddNode(2000, root);
  ASSERT_TRUE(summary.Insert(again, 777).ok());
  EXPECT_EQ(summary.Lookup(again), std::optional<uint64_t>(777));
}

TEST(LatticeSummaryTest, LookupHashedRequiresMatchingCode) {
  // A colliding hash with a different code must miss (the stored code is
  // always verified), never return another pattern's count.
  LatticeSummary summary(2);
  Twig t;
  int root = t.AddNode(0, -1);
  t.AddNode(1, root);
  ASSERT_TRUE(summary.Insert(t, 9).ok());
  const std::string code = t.CanonicalCode();
  const std::string other = "0(2)";
  EXPECT_FALSE(summary.LookupHashed(HashBytes(code), other).has_value());
  EXPECT_EQ(summary.LookupHashed(HashBytes(code), code),
            std::optional<uint64_t>(9));
}

}  // namespace
}  // namespace treelattice
