#include <string>

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/recursive_estimator.h"
#include "datagen/random_tree.h"
#include "mining/lattice_builder.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

LatticeSummary MustBuild(const Document& doc, int level) {
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return std::move(summary).value();
}

TEST(ExplainTest, SummaryHitIsLeafNode) {
  auto doc = ParseXmlString("<r><a><b/></a><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  auto trace = ExplainEstimate(summary, MustParse("a(b)", dict), *dict);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE((*trace)->from_summary);
  EXPECT_DOUBLE_EQ((*trace)->estimate, 1.0);
  EXPECT_TRUE((*trace)->children.empty());
  EXPECT_EQ((*trace)->twig_text, "a(b)");
}

TEST(ExplainTest, DecompositionHasThreeChildren) {
  std::string xml = "<r>";
  for (int i = 0; i < 4; ++i) xml += "<x><y><w/></y><z/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  Twig query = MustParse("x(y(w),z)", dict);
  auto trace = ExplainEstimate(summary, query, *dict);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE((*trace)->from_summary);
  ASSERT_EQ((*trace)->children.size(), 3u);
  // T1 * T2 / overlap arithmetic holds at the root.
  double t1 = (*trace)->children[0]->estimate;
  double t2 = (*trace)->children[1]->estimate;
  double ov = (*trace)->children[2]->estimate;
  EXPECT_NEAR((*trace)->estimate, t1 * t2 / ov, 1e-9);
}

TEST(ExplainTest, RootEstimateMatchesEstimator) {
  RandomTreeOptions tree;
  tree.seed = 15;
  tree.num_nodes = 150;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);
  RecursiveDecompositionEstimator estimator(&summary);

  WorkloadOptions wl;
  wl.seed = 2;
  wl.query_size = 6;
  wl.num_queries = 20;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    auto estimate = estimator.Estimate(q);
    auto trace = ExplainEstimate(summary, q, doc.dict());
    ASSERT_TRUE(estimate.ok() && trace.ok());
    EXPECT_NEAR((*trace)->estimate, *estimate, 1e-9 * (1 + *estimate))
        << q.ToDebugString();
  }
}

TEST(ExplainTest, RootMatchesSingleVoteVotingEstimator) {
  // The documented contract (explain.h): the trace follows the first valid
  // leaf pair at each level, which is exactly a voting estimator capped at
  // one vote per level. Full voting averages over all pairs and may
  // legitimately diverge from the trace root.
  RandomTreeOptions tree;
  tree.seed = 23;
  tree.num_nodes = 150;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 3);
  using Options = RecursiveDecompositionEstimator::Options;
  using Agg = RecursiveDecompositionEstimator::VoteAggregation;
  RecursiveDecompositionEstimator single_vote(&summary,
                                              Options{true, 1, Agg::kMean});

  WorkloadOptions wl;
  wl.seed = 5;
  wl.query_size = 6;
  wl.num_queries = 20;
  auto queries = GeneratePositiveWorkload(doc, wl);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    auto estimate = single_vote.Estimate(q);
    auto trace = ExplainEstimate(summary, q, doc.dict());
    ASSERT_TRUE(estimate.ok() && trace.ok());
    EXPECT_NEAR((*trace)->estimate, *estimate, 1e-9 * (1 + *estimate))
        << q.ToDebugString();
  }
}

TEST(ExplainTest, RenderIsIndentedAndComplete) {
  std::string xml = "<r>";
  for (int i = 0; i < 3; ++i) xml += "<x><y><w/></y><z/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  LatticeSummary summary = MustBuild(*doc, 3);
  auto trace =
      ExplainEstimate(summary, MustParse("x(y(w),z)", dict), *dict);
  ASSERT_TRUE(trace.ok());
  std::string text = RenderExplain(**trace);
  EXPECT_NE(text.find("[T1 * T2 / overlap]"), std::string::npos);
  EXPECT_NE(text.find("[summary]"), std::string::npos);
  EXPECT_NE(text.find("\n  "), std::string::npos);  // indentation
}

TEST(ExplainTest, EmptyQueryRejected) {
  Document doc;
  doc.AddNode("r", kInvalidNode);
  LatticeSummary summary = MustBuild(doc, 3);
  Twig empty;
  EXPECT_FALSE(ExplainEstimate(summary, empty, doc.dict()).ok());
}

}  // namespace
}  // namespace treelattice
