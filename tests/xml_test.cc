#include <string>

#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace treelattice {
namespace {

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  LabelId a = dict.Intern("book");
  LabelId b = dict.Intern("book");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Name(a), "book");
}

TEST(LabelDictTest, FindMissingReturnsInvalid) {
  LabelDict dict;
  dict.Intern("a");
  EXPECT_EQ(dict.Find("a"), 0);
  EXPECT_EQ(dict.Find("zzz"), kInvalidLabel);
}

TEST(LabelDictTest, DistinctLabelsGetDenseIds) {
  LabelDict dict;
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.Intern("b"), 1);
  EXPECT_EQ(dict.Intern("c"), 2);
}

TEST(DocumentTest, BuildAndNavigate) {
  Document doc;
  NodeId root = doc.AddNode("computer", kInvalidNode);
  NodeId laptops = doc.AddNode("laptops", root);
  NodeId desktops = doc.AddNode("desktops", root);
  NodeId laptop = doc.AddNode("laptop", laptops);
  doc.AddNode("brand", laptop);
  doc.AddNode("price", laptop);

  EXPECT_EQ(doc.NumNodes(), 6u);
  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.Parent(laptops), root);
  EXPECT_EQ(doc.NumChildren(root), 2);
  EXPECT_EQ(doc.NumChildren(laptop), 2);
  EXPECT_EQ(doc.Children(root), (std::vector<NodeId>{laptops, desktops}));
  EXPECT_TRUE(doc.Validate().ok());
}

TEST(DocumentTest, EmptyDocument) {
  Document doc;
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.root(), kInvalidNode);
  EXPECT_TRUE(doc.Validate().ok());
}

TEST(DocumentTest, MemoryBytesGrowsWithNodes) {
  Document doc;
  doc.AddNode("a", kInvalidNode);
  size_t one = doc.MemoryBytes();
  doc.AddNode("b", 0);
  EXPECT_GT(doc.MemoryBytes(), one);
}

TEST(LabelIndexTest, FindsAllNodesPerLabel) {
  Document doc;
  NodeId root = doc.AddNode("a", kInvalidNode);
  doc.AddNode("b", root);
  NodeId b2 = doc.AddNode("b", root);
  doc.AddNode("c", b2);
  LabelIndex index(doc);
  LabelId b_label = doc.dict().Find("b");
  EXPECT_EQ(index.Count(b_label), 2u);
  EXPECT_EQ(index.Count(doc.dict().Find("a")), 1u);
  EXPECT_EQ(index.Count(kInvalidLabel), 0u);
  EXPECT_TRUE(index.Nodes(999).empty());
}

// ---------------------------------------------------------------------------
// Parser tests.

TEST(XmlParserTest, ParsesNestedElements) {
  auto result = ParseXmlString("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Document& doc = *result;
  EXPECT_EQ(doc.NumNodes(), 4u);
  EXPECT_EQ(doc.dict().Name(doc.Label(doc.root())), "a");
  EXPECT_EQ(doc.NumChildren(doc.root()), 2);
}

TEST(XmlParserTest, IgnoresTextValues) {
  auto result = ParseXmlString("<a>hello<b>world</b>tail</a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumNodes(), 2u);
}

TEST(XmlParserTest, SkipsPrologCommentsCdataDoctype) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a SYSTEM \"a.dtd\">\n"
      "<!-- a comment -->\n"
      "<a><![CDATA[<not><parsed>]]><b/></a>";
  auto result = ParseXmlString(xml);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumNodes(), 2u);
}

TEST(XmlParserTest, AttributesIgnoredByDefault) {
  auto result = ParseXmlString("<a x=\"1\" y='2'><b z=\"3\"/></a>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumNodes(), 2u);
}

TEST(XmlParserTest, AttributesModeledWhenRequested) {
  XmlParseOptions options;
  options.model_attributes = true;
  auto result = ParseXmlString("<a x=\"1\"><b y='2'/></a>", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumNodes(), 4u);  // a, @x, b, @y
  EXPECT_EQ(result->dict().Find("@x"), 1);
}

TEST(XmlParserTest, SharedDictionary) {
  auto dict = std::make_shared<LabelDict>();
  dict->Intern("preexisting");
  XmlParseOptions options;
  options.dict = dict;
  auto result = ParseXmlString("<a/>", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(dict->Find("a"), 1);
  EXPECT_EQ(result->shared_dict().get(), dict.get());
}

TEST(XmlParserTest, RejectsMismatchedTags) {
  auto result = ParseXmlString("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, RejectsUnclosedElement) {
  auto result = ParseXmlString("<a><b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, RejectsMultipleRoots) {
  auto result = ParseXmlString("<a/><b/>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseXmlString("").ok());
  EXPECT_FALSE(ParseXmlString("   \n ").ok());
}

TEST(XmlParserTest, RejectsTextBeforeRoot) {
  EXPECT_FALSE(ParseXmlString("junk<a/>").ok());
}

TEST(XmlParserTest, RejectsGarbageAttribute) {
  EXPECT_FALSE(ParseXmlString("<a x></a>").ok());
  EXPECT_FALSE(ParseXmlString("<a x=1></a>").ok());
  EXPECT_FALSE(ParseXmlString("<a x=\"1></a>").ok());
}

TEST(XmlParserTest, MissingFileIsIOError) {
  auto result = ParseXmlFile("/nonexistent/path/file.xml");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Writer tests.

TEST(XmlWriterTest, RoundTripPreservesStructure) {
  const std::string xml = "<a><b><c/><c/></b><d/></a>";
  auto first = ParseXmlString(xml);
  ASSERT_TRUE(first.ok());
  std::string out = WriteXmlString(*first);
  auto second = ParseXmlString(out);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << " in: " << out;
  EXPECT_EQ(first->NumNodes(), second->NumNodes());
  for (NodeId n = 0; n < static_cast<NodeId>(first->NumNodes()); ++n) {
    EXPECT_EQ(first->dict().Name(first->Label(n)),
              second->dict().Name(second->Label(n)));
    EXPECT_EQ(first->Parent(n), second->Parent(n));
  }
}

TEST(XmlWriterTest, AttributeChildrenRoundTrip) {
  XmlParseOptions options;
  options.model_attributes = true;
  auto first = ParseXmlString("<a x=\"1\"><b/></a>", options);
  ASSERT_TRUE(first.ok());
  std::string out = WriteXmlString(*first);
  auto second = ParseXmlString(out, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << " in: " << out;
  EXPECT_EQ(second->NumNodes(), 3u);
}

TEST(XmlWriterTest, FileRoundTrip) {
  Document doc;
  NodeId root = doc.AddNode("r", kInvalidNode);
  doc.AddNode("x", root);
  std::string path = testing::TempDir() + "/tl_writer_test.xml";
  ASSERT_TRUE(WriteXmlFile(doc, path).ok());
  auto loaded = ParseXmlFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 2u);
}

TEST(XmlWriterTest, PrettyOutputParses) {
  auto doc = ParseXmlString("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  std::string pretty = WriteXmlString(*doc, /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = ParseXmlString(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->NumNodes(), 3u);
}

}  // namespace
}  // namespace treelattice
