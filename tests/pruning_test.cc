#include <string>

#include <gtest/gtest.h>

#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "datagen/random_tree.h"
#include "mining/lattice_builder.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

LatticeSummary MustBuild(const Document& doc, int level) {
  LatticeBuildOptions options;
  options.max_level = level;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return std::move(summary).value();
}

TEST(PruningTest, RejectsNegativeDelta) {
  Document doc;
  doc.AddNode("r", kInvalidNode);
  LatticeSummary summary = MustBuild(doc, 3);
  PruneOptions options;
  options.delta = -0.5;
  EXPECT_FALSE(PruneDerivablePatterns(summary, options).ok());
}

TEST(PruningTest, KeepsLevels1And2Verbatim) {
  RandomTreeOptions tree;
  tree.seed = 3;
  tree.num_nodes = 150;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 4);
  auto pruned = PruneDerivablePatterns(summary);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->NumPatterns(1), summary.NumPatterns(1));
  EXPECT_EQ(pruned->NumPatterns(2), summary.NumPatterns(2));
  for (int level = 1; level <= 2; ++level) {
    for (const std::string& code : summary.PatternsAtLevel(level)) {
      EXPECT_EQ(pruned->LookupCode(code), summary.LookupCode(code));
    }
  }
}

// Under perfect conditional independence, every level >= 3 pattern with
// distinct sibling labels is 0-derivable. Duplicate-sibling patterns like
// r(x,x) are genuinely non-derivable: the decomposition formula does not
// model match injectivity (est 8*8/1 = 64 vs true 8*7 = 56), so exactly
// those survive.
TEST(PruningTest, IndependentDocumentPrunesDistinctLabelPatterns) {
  std::string xml = "<r>";
  for (int i = 0; i < 8; ++i) xml += "<x><y/><z/><w/></x>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LatticeSummary summary = MustBuild(*doc, 4);
  ASSERT_GT(summary.NumPatterns(3), 1u);

  PruneStats stats;
  auto pruned = PruneDerivablePatterns(summary, PruneOptions(), &stats);
  ASSERT_TRUE(pruned.ok());
  // The only level-3 survivor is r(x,x); every independent branching
  // pattern (x(y,z), x(y,w), x(z,w), r(x(y)), ...) is derivable.
  EXPECT_EQ(pruned->NumPatterns(3), 1u);
  LabelDict* dict = &doc->mutable_dict();
  Result<Twig> rxx = Twig::Parse("r(x,x)", dict);
  ASSERT_TRUE(rxx.ok());
  EXPECT_TRUE(pruned->Contains(*rxx));
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
  EXPECT_EQ(stats.patterns_before, summary.NumPatterns());
  EXPECT_EQ(stats.patterns_after, pruned->NumPatterns());
  EXPECT_EQ(pruned->complete_through_level(), 2);
}

// Lemma 5: removing 0-derivable patterns leaves every estimate unchanged.
class Lemma5Property : public testing::TestWithParam<int> {};

TEST_P(Lemma5Property, ZeroDeltaPruningIsLossless) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed + 77;
  tree.num_nodes = 120;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 4);
  auto pruned = PruneDerivablePatterns(summary);
  ASSERT_TRUE(pruned.ok());

  RecursiveDecompositionEstimator full(&summary);
  RecursiveDecompositionEstimator compact(&*pruned);

  WorkloadOptions wl;
  wl.seed = seed;
  wl.num_queries = 20;
  for (int size = 3; size <= 7; ++size) {
    wl.query_size = size;
    auto queries = GeneratePositiveWorkload(doc, wl);
    ASSERT_TRUE(queries.ok());
    for (const Twig& q : *queries) {
      auto a = full.Estimate(q);
      auto b = compact.Estimate(q);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_NEAR(*a, *b, 1e-6 * (1.0 + *a)) << q.ToDebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma5Property, testing::Range(0, 10));

// Larger delta prunes at least as much as smaller delta.
TEST(PruningTest, DeltaMonotonicity) {
  RandomTreeOptions tree;
  tree.seed = 21;
  tree.num_nodes = 200;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  LatticeSummary summary = MustBuild(doc, 4);

  size_t previous = summary.NumPatterns();
  for (double delta : {0.0, 0.1, 0.2, 0.3}) {
    PruneOptions options;
    options.delta = delta;
    auto pruned = PruneDerivablePatterns(summary, options);
    ASSERT_TRUE(pruned.ok());
    EXPECT_LE(pruned->NumPatterns(), previous);
    previous = pruned->NumPatterns();
  }
}

TEST(PruningTest, NothingToPruneKeepsCompleteness) {
  // Document where no level-3 pattern is derivable: strong correlation.
  std::string xml = "<r>";
  for (int i = 0; i < 5; ++i) xml += "<a><b/><c/></a>";
  for (int i = 0; i < 5; ++i) xml += "<a><d/></a>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LatticeSummary summary = MustBuild(*doc, 3);
  auto pruned = PruneDerivablePatterns(summary);
  ASSERT_TRUE(pruned.ok());
  if (pruned->NumPatterns() == summary.NumPatterns()) {
    EXPECT_EQ(pruned->complete_through_level(),
              summary.complete_through_level());
  } else {
    EXPECT_EQ(pruned->complete_through_level(), 2);
  }
}

}  // namespace
}  // namespace treelattice
