#include <gtest/gtest.h>

#include "core/calibrated_estimator.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "workload/workload.h"

namespace treelattice {
namespace {

struct Fixture {
  Document doc;
  LatticeSummary summary{4};
};

Fixture MakeSetup() {
  DatasetOptions generate;
  generate.scale = 150;
  Fixture setup{GeneratePsd(generate), LatticeSummary(4)};
  LatticeBuildOptions options;
  options.max_level = 4;
  auto summary = BuildLattice(setup.doc, options);
  EXPECT_TRUE(summary.ok());
  setup.summary = std::move(summary).value();
  return setup;
}

TEST(CalibratedEstimatorTest, RejectsBadArguments) {
  Fixture setup = MakeSetup();
  RecursiveDecompositionEstimator inner(&setup.summary);
  EXPECT_FALSE(CalibratedEstimator::Calibrate(setup.doc, nullptr).ok());
  CalibratedEstimator::Options options;
  options.confidence = 1.5;
  EXPECT_FALSE(
      CalibratedEstimator::Calibrate(setup.doc, &inner, options).ok());
}

TEST(CalibratedEstimatorTest, PointEstimateMatchesInner) {
  Fixture setup = MakeSetup();
  RecursiveDecompositionEstimator inner(&setup.summary);
  CalibratedEstimator::Options options;
  options.max_calibrated_size = 6;
  options.queries_per_size = 20;
  auto calibrated =
      CalibratedEstimator::Calibrate(setup.doc, &inner, options);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status().ToString();

  WorkloadOptions workload;
  workload.query_size = 5;
  workload.num_queries = 10;
  workload.seed = 5;
  auto queries = GeneratePositiveWorkload(setup.doc, workload);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    auto a = inner.Estimate(q);
    auto b = calibrated->Estimate(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(*a, *b);
  }
  EXPECT_EQ(calibrated->name(), "calibrated(recursive)");
}

TEST(CalibratedEstimatorTest, FactorsAreMonotoneAndAtLeastOne) {
  Fixture setup = MakeSetup();
  RecursiveDecompositionEstimator inner(&setup.summary);
  CalibratedEstimator::Options options;
  options.max_calibrated_size = 7;
  options.queries_per_size = 30;
  auto calibrated =
      CalibratedEstimator::Calibrate(setup.doc, &inner, options);
  ASSERT_TRUE(calibrated.ok());
  double previous = 1.0;
  for (int size = 2; size <= 10; ++size) {
    double factor = calibrated->FactorForSize(size);
    EXPECT_GE(factor, 1.0);
    EXPECT_GE(factor, previous - 1e-12) << "size " << size;
    previous = factor;
  }
  EXPECT_DOUBLE_EQ(calibrated->FactorForSize(1), 1.0);
}

TEST(CalibratedEstimatorTest, BoundsBracketTheEstimate) {
  Fixture setup = MakeSetup();
  RecursiveDecompositionEstimator inner(&setup.summary);
  auto calibrated = CalibratedEstimator::Calibrate(setup.doc, &inner);
  ASSERT_TRUE(calibrated.ok());

  WorkloadOptions workload;
  workload.query_size = 6;
  workload.num_queries = 15;
  workload.seed = 11;
  auto queries = GeneratePositiveWorkload(setup.doc, workload);
  ASSERT_TRUE(queries.ok());
  for (const Twig& q : *queries) {
    auto bounded = calibrated->EstimateWithBound(q);
    ASSERT_TRUE(bounded.ok());
    EXPECT_LE(bounded->lower, bounded->estimate);
    EXPECT_GE(bounded->upper, bounded->estimate);
    EXPECT_GE(bounded->factor, 1.0);
  }
}

TEST(CalibratedEstimatorTest, EmpiricalCoverageNearConfidence) {
  Fixture setup = MakeSetup();
  RecursiveDecompositionEstimator inner(&setup.summary);
  CalibratedEstimator::Options options;
  options.confidence = 0.9;
  options.max_calibrated_size = 7;
  options.queries_per_size = 60;
  options.seed = 99;
  auto calibrated =
      CalibratedEstimator::Calibrate(setup.doc, &inner, options);
  ASSERT_TRUE(calibrated.ok());

  // Fresh workload (different seed) — coverage should be near 90%.
  MatchCounter counter(setup.doc);
  size_t covered = 0, total = 0;
  for (int size = 5; size <= 7; ++size) {
    WorkloadOptions workload;
    workload.query_size = size;
    workload.num_queries = 40;
    workload.seed = 123456 + static_cast<uint64_t>(size);
    auto queries = GeneratePositiveWorkload(setup.doc, workload);
    ASSERT_TRUE(queries.ok());
    for (const Twig& q : *queries) {
      double truth = static_cast<double>(counter.Count(q));
      auto bounded = calibrated->EstimateWithBound(q);
      ASSERT_TRUE(bounded.ok());
      ++total;
      if (truth >= bounded->lower - 1e-9 && truth <= bounded->upper + 1e-9) {
        ++covered;
      }
    }
  }
  ASSERT_GT(total, 50u);
  double coverage = static_cast<double>(covered) / static_cast<double>(total);
  EXPECT_GE(coverage, 0.75) << covered << "/" << total;
}

}  // namespace
}  // namespace treelattice
