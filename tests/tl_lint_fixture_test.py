#!/usr/bin/env python3
"""Fixture-driven tests for tools/tl_lint.py.

Runs the linter over tests/lint_fixtures/repo — a tiny known-bad tree where
every line that must be reported carries a `LINT-EXPECT[rule]` marker and
every rule also has a suppressed twin — and asserts the finding set matches
the markers EXACTLY (so both false negatives and false positives fail,
including any suppression that stops working). Also asserts:

  * --no-blocking-syscall removes exactly the blocking-syscall findings
    (the fallback-retirement contract: tl_analyze's loop-blocking check
    replaces the regex rule when libclang is available);
  * the clean fixture tree exits 0 with no findings.

Exit status: 0 pass, 1 fail.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
LINT = os.path.join(REPO, "tools", "tl_lint.py")
FIXTURE = os.path.join(HERE, "lint_fixtures", "repo")
CLEAN = os.path.join(HERE, "lint_fixtures", "clean")

MARKER_RE = re.compile(r"//\s*LINT-EXPECT\[([a-z-]+)\]")
FINDING_RE = re.compile(r"^([^:]+?)(?::(\d+))?: \[([a-z-]+)\]")


def expected_findings():
    expected = set()
    for dirpath, _, filenames in os.walk(os.path.join(FIXTURE, "src")):
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, FIXTURE)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    for m in MARKER_RE.finditer(line):
                        expected.add((rel, lineno, m.group(1)))
    # The alpha <-> beta module cycle is reported once, against the module
    # directory that closes the cycle, with no line number.
    expected.add((os.path.join("src", "beta"), 0, "include-cycle"))
    return expected


def run_lint(args):
    proc = subprocess.run([sys.executable, LINT] + args,
                          capture_output=True, text=True)
    found = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((m.group(1), int(m.group(2) or 0), m.group(3)))
    return proc.returncode, found


def main():
    failures = []
    expected = expected_findings()
    if len(expected) < 2:
        failures.append("fixture markers missing — did the tree move?")

    code, found = run_lint([FIXTURE])
    if code != 1:
        failures.append(f"bad-fixture run exited {code}, want 1")
    if found != expected:
        missing = sorted(expected - found)
        surplus = sorted(found - expected)
        failures.append(f"finding mismatch: missing={missing} "
                        f"unexpected={surplus}")

    no_block_expected = {f for f in expected if f[2] != "blocking-syscall"}
    code, found = run_lint(["--no-blocking-syscall", FIXTURE])
    if code != 1:
        failures.append(f"--no-blocking-syscall run exited {code}, want 1")
    if found != no_block_expected:
        failures.append("--no-blocking-syscall did not remove exactly the "
                        f"blocking-syscall findings: got {sorted(found)}")

    code, found = run_lint([CLEAN])
    if code != 0 or found:
        failures.append(f"clean fixture: exit {code}, findings "
                        f"{sorted(found)} (want 0, none)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"tl_lint fixtures: OK ({len(expected)} expected findings, "
          "suppressions honored, clean tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
