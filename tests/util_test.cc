#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "util/event_poller.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace treelattice {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad twig");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad twig");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad twig");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kParseError, StatusCode::kOutOfRange, StatusCode::kIOError,
        StatusCode::kCorruption, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded,
        StatusCode::kResourceExhausted, StatusCode::kCancelled}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, BudgetCodesRoundTrip) {
  Status deadline = Status::DeadlineExceeded("out of time");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: out of time");

  Status exhausted = Status::ResourceExhausted("out of steps");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "ResourceExhausted: out of steps");

  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  TL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  int v;
  TL_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.value_or(-1), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  int low = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Zipf(10, 1.2) == 0) ++low;
  }
  // Rank 0 should dominate a uniform share (10%).
  EXPECT_GT(low, trials / 5);
}

TEST(RngTest, ZipfZeroThetaIsUniformish) {
  Rng rng(17);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(HashTest, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(0), 0u);
}

TEST(HashTest, HashBytesDistinguishes) {
  EXPECT_NE(HashBytes("a(b,c)"), HashBytes("a(b(c))"));
  EXPECT_EQ(HashBytes("same"), HashBytes("same"));
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto pieces = SplitString("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x\t\n"), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("treelattice", "tree"));
  EXPECT_FALSE(StartsWith("tree", "treelattice"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(100), "100 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray().Int(2).String("x").Bool(true).Null().EndArray();
  w.Key("c").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"x",true,null],"c":{}})");
}

TEST(JsonWriterTest, EscapesStringsAndControlChars) {
  JsonWriter w;
  w.BeginArray().String("quo\"te\\path\n\x01").EndArray();
  EXPECT_EQ(w.str(), "[\"quo\\\"te\\\\path\\n\\u0001\"]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(1.5)
      .Double(std::numeric_limits<double>::infinity())
      .Double(std::numeric_limits<double>::quiet_NaN())
      .EndArray();
  EXPECT_EQ(w.str(), "[1.5,null,null]");
}

TEST(JsonWriterTest, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject().Key("m").Raw(R"({"x":1})").Key("n").Int(2).EndObject();
  EXPECT_EQ(w.str(), R"({"m":{"x":1},"n":2})");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("bench");
  w.Key("values").BeginArray().Int(1).Double(2.5).EndArray();
  w.Key("ok").Bool(true);
  w.EndObject();
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->string_value, "bench");
  ASSERT_EQ(parsed->Find("values")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("values")->array[1].number_value, 2.5);
  EXPECT_TRUE(parsed->Find("ok")->bool_value);
}

TEST(JsonParseTest, HandlesEscapesAndUnicode) {
  Result<JsonValue> parsed = ParseJson(R"("a\"b\\c\nA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value, "a\"b\\c\nA");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\":1,}", "[1] trailing"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParseTest, FindOnNonObjectIsNull) {
  Result<JsonValue> parsed = ParseJson("[1,2]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("x"), nullptr);
}

// Regression coverage for the poller's edge Status values: the transport
// now routes every Add/Modify/Remove failure through CountPollerError
// instead of discarding it, so the contract below is load-bearing.
class EventPollerEdgeTest : public ::testing::TestWithParam<bool> {};

TEST_P(EventPollerEdgeTest, ModifyUnknownFdIsNotFound) {
  EventPoller poller(/*force_poll=*/GetParam());
  ASSERT_TRUE(poller.ok());
  Status s = poller.Modify(12345, /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_P(EventPollerEdgeTest, RemoveUnknownFdIsTolerated) {
  EventPoller poller(/*force_poll=*/GetParam());
  ASSERT_TRUE(poller.ok());
  // Closing a fd auto-deregisters it from epoll, so a second Remove from
  // the transport's teardown bookkeeping must not count as an error.
  EXPECT_TRUE(poller.Remove(12345).ok());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST_P(EventPollerEdgeTest, AddBadFdIsInvalidArgument) {
  EventPoller poller(/*force_poll=*/GetParam());
  ASSERT_TRUE(poller.ok());
  Status s = poller.Add(-1, /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(poller.watched(), 0u);
}

TEST_P(EventPollerEdgeTest, UsableAfterEdgeFailures) {
  EventPoller poller(/*force_poll=*/GetParam());
  ASSERT_TRUE(poller.ok());
  IgnoreStatus(poller.Modify(12345, true, false), "test: edge-case probe");
  IgnoreStatus(poller.Remove(12345), "test: edge-case probe");

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  ASSERT_TRUE(poller.Add(pipe_fds[0], /*want_read=*/true,
                         /*want_write=*/false)
                  .ok());
  ASSERT_EQ(write(pipe_fds[1], "x", 1), 1);
  std::vector<EventPoller::Event> events;
  ASSERT_TRUE(poller.Wait(/*timeout_millis=*/1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pipe_fds[0]);
  EXPECT_TRUE(events[0].readable);

  EXPECT_TRUE(poller.Remove(pipe_fds[0]).ok());
  close(pipe_fds[0]);
  close(pipe_fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventPollerEdgeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PollFallback" : "Native";
                         });

}  // namespace
}  // namespace treelattice
