#include <string>

#include <gtest/gtest.h>

#include "datagen/random_tree.h"
#include "match/brute_force.h"
#include "match/matcher.h"
#include "util/rng.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// The paper's Figure 1 document: two laptops with brand+price under
/// computer/laptops, plus an empty desktops branch.
Document PaperFigure1Document() {
  auto doc = ParseXmlString(
      "<computer>"
      "  <laptops>"
      "    <laptop><brand/><price/></laptop>"
      "    <laptop><brand/><price/></laptop>"
      "  </laptops>"
      "  <desktops/>"
      "</computer>");
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(MatchCounterTest, PaperFigure1TwigHasTwoMatches) {
  Document doc = PaperFigure1Document();
  LabelDict* dict = &doc.mutable_dict();
  MatchCounter counter(doc);
  Twig query = MustParse("laptop(brand,price)", dict);
  EXPECT_EQ(counter.Count(query), 2u);
}

TEST(MatchCounterTest, SingleNodeCountsLabelOccurrences) {
  Document doc = PaperFigure1Document();
  LabelDict* dict = &doc.mutable_dict();
  MatchCounter counter(doc);
  EXPECT_EQ(counter.Count(MustParse("laptop", dict)), 2u);
  EXPECT_EQ(counter.Count(MustParse("computer", dict)), 1u);
  EXPECT_EQ(counter.Count(MustParse("brand", dict)), 2u);
}

TEST(MatchCounterTest, MissingLabelGivesZero) {
  Document doc = PaperFigure1Document();
  LabelDict* dict = &doc.mutable_dict();
  MatchCounter counter(doc);
  EXPECT_EQ(counter.Count(MustParse("tablet", dict)), 0u);
  EXPECT_EQ(counter.Count(MustParse("computer(tablet)", dict)), 0u);
}

TEST(MatchCounterTest, StructureMattersNotJustLabels) {
  Document doc = PaperFigure1Document();
  LabelDict* dict = &doc.mutable_dict();
  MatchCounter counter(doc);
  // brand under computer directly: no match.
  EXPECT_EQ(counter.Count(MustParse("computer(brand)", dict)), 0u);
  // deep chain: one per laptop.
  EXPECT_EQ(counter.Count(MustParse("computer(laptops(laptop(price)))", dict)),
            2u);
}

TEST(MatchCounterTest, DuplicateSiblingLabelsAreInjective) {
  auto doc = ParseXmlString("<a><b/><b/><b/></a>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);
  // Ordered pairs of distinct b's: 3 * 2 = 6.
  EXPECT_EQ(counter.Count(MustParse("a(b,b)", dict)), 6u);
  // Triples: 3! = 6.
  EXPECT_EQ(counter.Count(MustParse("a(b,b,b)", dict)), 6u);
  // More query children than document children: 0.
  EXPECT_EQ(counter.Count(MustParse("a(b,b,b,b)", dict)), 0u);
}

TEST(MatchCounterTest, EmptyQueryAndEmptyDocument) {
  Document empty;
  MatchCounter counter(empty);
  Twig t;
  EXPECT_EQ(counter.Count(t), 0u);

  Document doc = PaperFigure1Document();
  MatchCounter counter2(doc);
  EXPECT_EQ(counter2.Count(t), 0u);
}

TEST(MatchCounterTest, MatchesAgreeWithBruteForceOnFixedExamples) {
  auto doc = ParseXmlString(
      "<r><a><b/><c><b/></c></a><a><c/><c><b/><b/></c></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  MatchCounter counter(*doc);
  for (const char* q :
       {"r", "a", "b", "c", "a(b)", "a(c)", "a(c(b))", "c(b,b)", "r(a,a)",
        "a(b,c)", "a(c,c)", "r(a(c(b)))", "r(a(b),a(c))"}) {
    Twig query = MustParse(q, dict);
    EXPECT_EQ(counter.Count(query), BruteForceCount(*doc, query))
        << "query " << q;
  }
}

TEST(SaturatingArithmeticTest, Saturates) {
  const uint64_t big = ~uint64_t{0};
  EXPECT_EQ(SaturatingMul(big, 2), big);
  EXPECT_EQ(SaturatingAdd(big, 1), big);
  EXPECT_EQ(SaturatingMul(3, 4), 12u);
  EXPECT_EQ(SaturatingMul(0, big), 0u);
  EXPECT_EQ(SaturatingAdd(3, 4), 7u);
}

// Property sweep: the DP counter agrees with brute-force enumeration on
// random documents and random query twigs, including duplicate labels.
class MatcherVsBruteForce : public testing::TestWithParam<int> {};

TEST_P(MatcherVsBruteForce, Agree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions doc_options;
  doc_options.seed = seed;
  doc_options.num_nodes = 40;
  doc_options.num_labels = 3;  // few labels => many duplicate-label cases
  doc_options.max_fanout = 3;
  doc_options.max_depth = 5;
  Document doc = GenerateRandomTree(doc_options);
  MatchCounter counter(doc);

  Rng rng(seed * 7919 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 1 + static_cast<int>(rng.Uniform(5));
    Twig query;
    query.AddNode(static_cast<LabelId>(rng.Uniform(3)), -1);
    for (int i = 1; i < n; ++i) {
      query.AddNode(static_cast<LabelId>(rng.Uniform(3)),
                    static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))));
    }
    EXPECT_EQ(counter.Count(query), BruteForceCount(doc, query))
        << "seed " << seed << " query " << query.ToDebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherVsBruteForce, testing::Range(0, 40));

}  // namespace
}  // namespace treelattice
