#include <string>

#include <gtest/gtest.h>

#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "treesketch/tree_sketch.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(TreeSketchTest, RejectsEmptyDocument) {
  Document doc;
  EXPECT_FALSE(TreeSketch::Build(doc).ok());
}

TEST(TreeSketchTest, PerfectSynopsisIsExactOnUniformDocument) {
  // Every 'a' has exactly 2 b's and 1 c: count-stable partition needs no
  // merging, so estimates are exact.
  std::string xml = "<r>";
  for (int i = 0; i < 6; ++i) xml += "<a><b/><b/><c/></a>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();

  TreeSketchOptions options;
  options.memory_budget_bytes = 1 << 20;  // generous: no merging
  TreeSketchStats stats;
  auto sketch = TreeSketch::Build(*doc, options, &stats);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();

  MatchCounter counter(*doc);
  // Exact for queries without duplicate sibling labels.
  for (const char* q : {"a", "a(b)", "a(c)", "r(a)", "r(a(b))", "a(b,c)"}) {
    Twig query = MustParse(q, dict);
    auto estimate = sketch->EstimateCount(query);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(*estimate, static_cast<double>(counter.Count(query)), 1e-9)
        << q;
  }
  // Duplicate sibling labels: the multiplicative model ignores match
  // injectivity and overcounts even with a perfect synopsis
  // (6*2 * 6*1 = 72 vs true 6*2 * 5*1 = 60).
  Twig dup = MustParse("r(a(b),a(c))", dict);
  auto estimate = sketch->EstimateCount(dup);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, 72.0, 1e-9);
  EXPECT_EQ(counter.Count(dup), 60u);
}

TEST(TreeSketchTest, UnknownLabelEstimatesZero) {
  auto doc = ParseXmlString("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto sketch = TreeSketch::Build(*doc);
  ASSERT_TRUE(sketch.ok());
  Twig query = MustParse("zzz", dict);
  auto estimate = sketch->EstimateCount(query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0.0);
  Twig nested = MustParse("r(zzz)", dict);
  estimate = sketch->EstimateCount(nested);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 0.0);
}

TEST(TreeSketchTest, EmptyQueryRejected) {
  auto doc = ParseXmlString("<r/>");
  ASSERT_TRUE(doc.ok());
  auto sketch = TreeSketch::Build(*doc);
  ASSERT_TRUE(sketch.ok());
  Twig empty;
  EXPECT_FALSE(sketch->EstimateCount(empty).ok());
}

TEST(TreeSketchTest, BudgetShrinksSynopsis) {
  RandomTreeOptions tree;
  tree.seed = 9;
  tree.num_nodes = 2000;
  tree.num_labels = 6;
  Document doc = GenerateRandomTree(tree);

  TreeSketchOptions big;
  big.memory_budget_bytes = 1 << 22;
  TreeSketchStats big_stats;
  auto big_sketch = TreeSketch::Build(doc, big, &big_stats);
  ASSERT_TRUE(big_sketch.ok());

  TreeSketchOptions small;
  small.memory_budget_bytes = 2 * 1024;
  TreeSketchStats small_stats;
  auto small_sketch = TreeSketch::Build(doc, small, &small_stats);
  ASSERT_TRUE(small_sketch.ok());

  EXPECT_LT(small_sketch->NumClusters(), big_sketch->NumClusters());
  EXPECT_LE(small_sketch->MemoryBytes(), big_sketch->MemoryBytes());
  EXPECT_GT(small_stats.merges_performed, 0u);
  EXPECT_EQ(big_stats.initial_stable_clusters,
            small_stats.initial_stable_clusters);
}

TEST(TreeSketchTest, MergedSynopsisStillEstimatesLabelCountsExactly) {
  // Single-node queries are exact regardless of merging: cluster sizes are
  // preserved under merges.
  RandomTreeOptions tree;
  tree.seed = 13;
  tree.num_nodes = 800;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  TreeSketchOptions options;
  options.memory_budget_bytes = 1024;
  auto sketch = TreeSketch::Build(doc, options);
  ASSERT_TRUE(sketch.ok());
  MatchCounter counter(doc);
  for (LabelId l = 0; l < static_cast<LabelId>(doc.dict().size()); ++l) {
    Twig single;
    single.AddNode(l, -1);
    auto estimate = sketch->EstimateCount(single);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(*estimate, static_cast<double>(counter.Count(single)), 1e-9);
  }
}

// The paper's Section 5.3 / Fig. 11 failure mode: high variance in child
// counts makes the merged multiplicative estimate err badly, while the
// variance is invisible to single-edge queries.
TEST(TreeSketchTest, HighVarianceFanoutDegradesAccuracy) {
  // 3 a's with four b's each, 1 a with two b's (paper's example document).
  std::string xml = "<r>";
  for (int i = 0; i < 3; ++i) xml += "<a><b/><b/><b/><b/></a>";
  xml += "<a><b/><b/></a>";
  xml += "</r>";
  auto doc = ParseXmlString(xml);
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();

  TreeSketchOptions options;
  options.memory_budget_bytes = 64;  // force label-granularity clustering
  auto sketch = TreeSketch::Build(*doc, options);
  ASSERT_TRUE(sketch.ok());
  ASSERT_LE(sketch->NumClusters(), 3u);

  MatchCounter counter(*doc);
  // Query a(b,b): true = 3*(4*3) + 1*(2*1) = 38.
  Twig query = MustParse("a(b,b)", dict);
  EXPECT_EQ(counter.Count(query), 38u);
  auto estimate = sketch->EstimateCount(query);
  ASSERT_TRUE(estimate.ok());
  // Label-merged synopsis: 4 * 3.5 * 3.5 = 49 — visibly off.
  EXPECT_NEAR(*estimate, 49.0, 1e-6);
}

TEST(TreeSketchTest, ZeroBudgetMergesToMinimum) {
  RandomTreeOptions tree;
  tree.seed = 77;
  tree.num_nodes = 500;
  tree.num_labels = 5;
  Document doc = GenerateRandomTree(tree);
  TreeSketchOptions options;
  options.memory_budget_bytes = 0;  // unreachable: merge until label level
  auto sketch = TreeSketch::Build(doc, options);
  ASSERT_TRUE(sketch.ok());
  // At most one cluster per occurring label remains.
  EXPECT_LE(sketch->NumClusters(), doc.dict().size());
  // Single-label counts stay exact even at minimum granularity.
  MatchCounter counter(doc);
  Twig single;
  single.AddNode(doc.Label(doc.root()), -1);
  auto estimate = sketch->EstimateCount(single);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, double(counter.Count(single)), 1e-9);
}

TEST(TreeSketchEstimatorAdapterTest, WrapsSketch) {
  auto doc = ParseXmlString("<r><a/><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto sketch = TreeSketch::Build(*doc);
  ASSERT_TRUE(sketch.ok());
  TreeSketchEstimator estimator(&*sketch);
  EXPECT_EQ(estimator.name(), "treesketches");
  auto estimate = estimator.Estimate(MustParse("a", dict));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 2.0);
}

}  // namespace
}  // namespace treelattice
