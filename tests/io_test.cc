// Env layer tests: Posix file operations, the atomic-write protocol, and
// the fault injector that the persistence robustness suite builds on. The
// central invariant: any injected fault makes the operation return a
// non-OK Status while the destination path stays either absent or fully
// intact — a reader can never observe a torn file.

#include <string>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace treelattice {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC-32C.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones), 0x62a8ab43u);
  EXPECT_EQ(crc32c::Value("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t split = crc32c::Extend(crc32c::Value(data.substr(0, 13)),
                                  data.substr(13));
  EXPECT_EQ(split, crc32c::Value(data));
}

TEST(Crc32cTest, MaskRoundTrips) {
  uint32_t crc = crc32c::Value("payload");
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  ByteReader reader(buf);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(reader.GetFixed32(&v32));
  ASSERT_TRUE(reader.GetFixed64(&v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(reader.empty());
  EXPECT_FALSE(reader.GetFixed32(&v32));  // past the end: clean failure
}

TEST(PosixEnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  std::string path = TestPath("io_roundtrip.bin");
  std::string payload("binary\0payload", 14);
  std::string contents;
  ASSERT_TRUE(WriteFileAtomic(env, path, payload).ok());
  ASSERT_TRUE(ReadFileToString(env, path, &contents).ok());
  EXPECT_EQ(contents, payload);
  Result<uint64_t> size = env->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());
  // The temp file of the atomic protocol must be gone.
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, RandomAccessReadsAtOffsets) {
  Env* env = Env::Default();
  std::string path = TestPath("io_offsets.bin");
  ASSERT_TRUE(WriteFileAtomic(env, path, "0123456789").ok());
  Result<std::unique_ptr<RandomAccessFile>> file =
      env->NewRandomAccessFile(path);
  ASSERT_TRUE(file.ok());
  std::string chunk;
  ASSERT_TRUE((*file)->Read(3, 4, &chunk).ok());
  EXPECT_EQ(chunk, "3456");
  // Reading past EOF is a short (empty) read, not an error.
  ASSERT_TRUE((*file)->Read(100, 4, &chunk).ok());
  EXPECT_TRUE(chunk.empty());
}

TEST(PosixEnvTest, MissingFileErrors) {
  Env* env = Env::Default();
  std::string path = TestPath("io_never_written.bin");
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_FALSE(env->NewRandomAccessFile(path).ok());
  EXPECT_FALSE(env->GetFileSize(path).ok());
  std::string contents;
  Status status = ReadFileToString(env, path, &contents);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(PosixEnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  std::string from = TestPath("io_rename_from.bin");
  std::string to = TestPath("io_rename_to.bin");
  ASSERT_TRUE(WriteFileAtomic(env, from, "new").ok());
  ASSERT_TRUE(WriteFileAtomic(env, to, "old").ok());
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env, to, &contents).ok());
  EXPECT_EQ(contents, "new");
  EXPECT_FALSE(env->FileExists(from));
}

TEST(FaultEnvTest, WriteFailureLeavesNoDestination) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_write.bin");
  env.config().fail_write_after_bytes = 10;
  Status status = WriteFileAtomic(&env, path, std::string(100, 'x'));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
}

TEST(FaultEnvTest, TornWriteLeavesNoDestination) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_torn.bin");
  env.config().fail_write_after_bytes = 10;
  env.config().torn_writes = true;
  Status status = WriteFileAtomic(&env, path, std::string(100, 'x'));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The torn prefix only ever reached the temp file, which was cleaned up.
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
  EXPECT_EQ(env.bytes_written(), 10);
}

TEST(FaultEnvTest, SyncFailurePropagates) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_sync.bin");
  env.config().fail_sync = true;
  Status status = WriteFileAtomic(&env, path, "data");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_GE(env.syncs(), 1);
}

TEST(FaultEnvTest, RenameFailurePreservesOldDestination) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_rename.bin");
  ASSERT_TRUE(WriteFileAtomic(&env, path, "old contents").ok());
  env.config().fail_rename = true;
  Status status = WriteFileAtomic(&env, path, "new contents");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The failed save must not have clobbered the previous version.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, path, &contents).ok());
  EXPECT_EQ(contents, "old contents");
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
}

TEST(FaultEnvTest, CleanupNeverMasksTheOriginalError) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_mask.bin");
  env.config().fail_rename = true;
  Status status = WriteFileAtomic(&env, path, "payload");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The caller must see the rename failure, not whatever the best-effort
  // Close/DeleteFile cleanup returned afterwards.
  EXPECT_NE(status.message().find("injected rename failure"),
            std::string::npos)
      << status.ToString();
  // ... and cleanup must still have run: the temp file is gone.
  EXPECT_GE(env.deletes(), 1);
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
}

TEST(FaultEnvTest, ShortReadsAreLoopedOver) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_short.bin");
  std::string payload(1000, 'y');
  ASSERT_TRUE(WriteFileAtomic(&env, path, payload).ok());
  env.config().short_read_cap = 7;
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, path, &contents).ok());
  EXPECT_EQ(contents, payload);
  EXPECT_GE(env.reads(), static_cast<int>(payload.size() / 7));
}

TEST(FaultEnvTest, ReadErrorPropagates) {
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("io_fault_eio.bin");
  ASSERT_TRUE(WriteFileAtomic(&env, path, "data").ok());
  env.config().fail_read = true;
  std::string contents;
  Status status = ReadFileToString(&env, path, &contents);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace treelattice
