#!/bin/sh
# Soak test for `treelattice serve` (ctest label: serve): 200+ queries
# streamed through a live server while the summary file on disk is
# corrupted and reloaded, a deliberately tiny queue is overflowed, and a
# SIGTERM lands mid-stream. The server must never die, every stdout line
# must be well-formed JSON, failed reloads must keep the old snapshot
# serving, and both EOF and SIGTERM must drain cleanly. Phase 4 repeats
# the soak over TCP (--listen) with a mixed single/batch stream, injected
# socket faults, RST-slamming chaos connections, and a mid-soak SIGTERM —
# exactly-once per-query delivery must hold end to end. Invoked by ctest
# with the binary path as $1.
set -e

CLI="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/doc.xml" <<'EOF'
<catalog>
  <items>
    <item><name/><price/></item>
    <item><name/><price/></item>
    <item><name/></item>
  </items>
  <vendors><vendor><name/></vendor></vendors>
</catalog>
EOF

"$CLI" build "$WORKDIR/doc.xml" --out="$WORKDIR/doc.summary" --level=3 \
    > /dev/null
cp "$WORKDIR/doc.summary" "$WORKDIR/doc.summary.good"

# Every stdout line the server emits must parse as JSON. Prefer a real
# parser when python3 is around (it is wherever the lint suite runs);
# otherwise fall back to a shape check.
assert_all_json() {
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$1" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except ValueError:
            sys.exit(f"line {n} is not valid JSON: {line[:120]}")
PYEOF
  else
    if grep -v '^{.*}$' "$1" | grep -q .; then
      echo "non-JSON line in $1" >&2
      exit 1
    fi
  fi
}

# The server loads the summary at startup; wait for its ready line before
# touching the file on disk, or the corruption below races the startup
# load and the server (correctly) refuses to start at all.
wait_ready() {
  n=0
  while ! grep -q "serve: ready" "$1" 2> /dev/null; do
    n=$((n + 1))
    if [ "$n" -ge 100 ]; then
      echo "server never became ready; stderr:" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# --- phase 1: 200-query soak with injected reload faults -----------------

mkfifo "$WORKDIR/in"
"$CLI" serve "$WORKDIR/doc.summary" --workers=4 --deadline-ms=100 \
    --reload-backoff-ms=0 \
    < "$WORKDIR/in" > "$WORKDIR/soak.out" 2> "$WORKDIR/soak.err" &
SERVE_PID=$!
exec 3> "$WORKDIR/in"
wait_ready "$WORKDIR/soak.err"

i=0
while [ "$i" -lt 100 ]; do
  echo "item(name,price)" >&3
  i=$((i + 1))
done

# Corrupt the file on disk: the strict hot reload must fail and the old
# snapshot must keep answering the next 100 queries.
head -c 64 /dev/urandom > "$WORKDIR/doc.summary" 2>/dev/null \
  || dd if=/dev/zero of="$WORKDIR/doc.summary" bs=64 count=1 2>/dev/null
echo "#reload" >&3

i=0
while [ "$i" -lt 100 ]; do
  case $((i % 4)) in
    0) echo "item(name,price)" >&3 ;;
    1) echo "/catalog/items/item[name]" >&3 ;;
    2) echo '{"query":"item(name)","deadline_ms":50,"max_steps":100000}' >&3 ;;
    3) echo "((((not a query" >&3 ;;
  esac
  i=$((i + 1))
done

# Heal the file; this reload must succeed and bump the snapshot version.
cp "$WORKDIR/doc.summary.good" "$WORKDIR/doc.summary"
echo "#reload" >&3
echo "item(name,price)" >&3
echo "#stats" >&3

exec 3>&-   # EOF: graceful drain
wait "$SERVE_PID"

grep -q "serve: reload failed" "$WORKDIR/soak.err"
grep -q "serve: reloaded" "$WORKDIR/soak.err"
grep -q "serve: drained" "$WORKDIR/soak.err"
assert_all_json "$WORKDIR/soak.out"

# Exactly one response per request (201 queries), plus the stats record.
RESPONSES=$(grep -c '^{"id":' "$WORKDIR/soak.out")
test "$RESPONSES" -eq 201
grep -q '^{"stats":' "$WORKDIR/soak.out"
# The malformed queries answered with structured JSON errors, not crashes.
grep -q '"ok":false,"error":{"code":' "$WORKDIR/soak.out"
# Known-good queries kept answering after the failed reload.
OK_COUNT=$(grep -c '"ok":true' "$WORKDIR/soak.out")
test "$OK_COUNT" -ge 150
# The healed reload produced a version-2 snapshot for the final query.
grep -q '"snapshot_version":2' "$WORKDIR/soak.out"

# --- phase 2: queue overflow sheds instead of growing or crashing --------

i=0
while [ "$i" -lt 30 ]; do
  echo "item(name,price)"
  i=$((i + 1))
done | "$CLI" serve "$WORKDIR/doc.summary" --workers=1 --queue=2 \
    --worker-delay-ms=20 > "$WORKDIR/shed.out" 2> "$WORKDIR/shed.err"

assert_all_json "$WORKDIR/shed.out"
SHED_RESPONSES=$(grep -c '^{"id":' "$WORKDIR/shed.out")
test "$SHED_RESPONSES" -eq 30
grep -q '"code":"ResourceExhausted"' "$WORKDIR/shed.out"
grep -q "serve: drained" "$WORKDIR/shed.err"

# --- phase 3: SIGTERM mid-stream drains instead of dropping --------------

mkfifo "$WORKDIR/in2"
"$CLI" serve "$WORKDIR/doc.summary" --workers=2 \
    < "$WORKDIR/in2" > "$WORKDIR/term.out" 2> "$WORKDIR/term.err" &
SERVE_PID=$!
exec 3> "$WORKDIR/in2"
wait_ready "$WORKDIR/term.err"
i=0
while [ "$i" -lt 10 ]; do
  echo "item(name)" >&3
  i=$((i + 1))
done
# Give the server a moment to admit the batch, then signal it.
sleep 1
kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
exec 3>&-
test "$RC" -eq 0
grep -q "serve: drained" "$WORKDIR/term.err"
assert_all_json "$WORKDIR/term.out"
TERM_RESPONSES=$(grep -c '^{"id":' "$WORKDIR/term.out")
test "$TERM_RESPONSES" -eq 10

# --- phase 4: TCP soak — faults, resets, and a mid-soak SIGTERM ----------
# 200 pipelined queries over a real socket — 150 single lines mixed with
# 10 batch array lines of 5 queries each (DESIGN.md §14) — while injected
# short reads/writes and EAGAIN storms batter every syscall and chaos
# connections slam RSTs, an oversized frame, malformed batches, and
# garbage at the server; then SIGTERM lands with a second mixed wave
# still in flight. The main client must get exactly one response per
# QUERY (zero drops, zero dupes; each batch line answered by exactly one
# array line), and the server's own drain accounting must conserve
# per-query: admitted == delivered + orphaned.

if command -v python3 > /dev/null 2>&1; then
  # --queue=256: the whole 200-query burst lands at once over TCP; the
  # admission-shed path has its own coverage (phase 2, transport_test).
  # --worker-delay-ms=2 makes every query cross the 1 ms slow threshold
  # deterministically; without it the /slowz assertion below hinges on
  # queue-wait luck on a fast machine.
  "$CLI" serve "$WORKDIR/doc.summary" --listen=127.0.0.1:0 --workers=4 \
      --queue=256 --drain-ms=3000 --max-frame-bytes=4096 \
      --worker-delay-ms=2 \
      --net-fault-seed=42 --net-fault-short=0.2 --net-fault-eagain=0.1 \
      --admin=127.0.0.1:0 --slow-threshold-ms=1 --slow-log-size=64 \
      > /dev/null 2> "$WORKDIR/tcp.err" &
  SERVE_PID=$!

  python3 - "$WORKDIR/tcp.err" "$SERVE_PID" <<'PYEOF'
import json, os, re, signal, socket, struct, sys, time

err_path, pid = sys.argv[1], int(sys.argv[2])

# Wait for the listening lines and extract both ephemeral ports.
port = admin_port = None
deadline = time.time() + 10
while time.time() < deadline and (port is None or admin_port is None):
    try:
        with open(err_path) as f:
            text = f.read()
        m = re.search(r"listening on [\d.]+:(\d+)", text)
        if m:
            port = int(m.group(1))
        m = re.search(r"admin on [\d.]+:(\d+)", text)
        if m:
            admin_port = int(m.group(1))
    except FileNotFoundError:
        pass
    time.sleep(0.05)
assert port is not None, "server never printed its port"
assert admin_port is not None, "server never printed its admin port"

def admin_get(target):
    """One-shot HTTP GET against the admin plane; returns (status, body)."""
    s = socket.create_connection(("127.0.0.1", admin_port), timeout=10)
    s.sendall(b"GET %s HTTP/1.1\r\nHost: smoke\r\n\r\n" % target.encode())
    raw = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        raw += chunk
    s.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body

def connect():
    return socket.create_connection(("127.0.0.1", port), timeout=10)

def rst(sock):
    """Abortive close: SO_LINGER(0) turns close() into an RST."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
    sock.close()

main = connect()
# 150 singles (ids 1..150) + 10 batch lines of 5 (ids 151..200): one
# mixed stream, 200 queries total.
stream = b"".join(
    b'{"query": "item(name,price)", "id": %d}\n' % i
    for i in range(1, 151))
stream += b"".join(
    b"[" + b",".join(
        b'{"query": "item(name)", "id": %d}' % (151 + 5 * k + j)
        for j in range(5)) + b"]\n"
    for k in range(10))
main.sendall(stream)

seen = set()
batch_lines = 0
buf = b""
deadline = time.time() + 60
chaos_done = False
while len(seen) < 200:
    assert time.time() < deadline, f"timed out with {len(seen)}/200 responses"
    chunk = main.recv(65536)
    assert chunk, f"EOF with only {len(seen)}/200 responses"
    buf += chunk
    while b"\n" in buf:
        line, buf = buf.split(b"\n", 1)
        record = json.loads(line)
        if isinstance(record, list):
            # One array line per batch line, positional: exactly the 5
            # consecutive ids of one submitted batch, in order.
            batch_lines += 1
            ids = [item["id"] for item in record]
            assert ids == list(range(ids[0], ids[0] + 5)), ids
            assert ids[0] >= 151 and (ids[0] - 151) % 5 == 0, ids
            items = record
        else:
            items = [record]
        for item in items:
            assert item["ok"], item
            rid = item["id"]
            assert rid not in seen, f"duplicate response id {rid}"
            seen.add(rid)
    if len(seen) >= 50 and not chaos_done:
        chaos_done = True
        # Chaos mid-soak: resets with requests in flight, an oversized
        # frame, malformed batch lines, and garbage — none of it may
        # disturb the main stream.
        for _ in range(3):
            c = connect()
            c.sendall(b'{"query": "item(name)"}\n' * 5)
            rst(c)
        c = connect()
        c.sendall(b"x" * 10000 + b"\n")
        assert b'"error"' in c.recv(4096)  # oversized -> error, not close
        c.close()
        c = connect()
        c.sendall(b"[]\n")                 # empty batch -> error line
        assert b'"error"' in c.recv(4096)
        c.close()
        c = connect()
        c.sendall(b'["item(name)", 42]\n')  # bad element -> error line
        assert b'"error"' in c.recv(4096)
        c.close()
        c = connect()
        c.sendall(b"{{{{not json\n")
        c.close()
assert seen == set(range(1, 201)), "response ids mismatch"
assert batch_lines == 10, f"expected 10 batch response lines, saw {batch_lines}"

# Admin plane mid-soak: all four endpoints must answer while the serving
# port is still live, and the slow-query ring (threshold 1 ms) must have
# caught real traffic with its stage timeline and shape features.
status, body = admin_get("/healthz")
assert status == 200 and json.loads(body)["ok"], (status, body)
status, body = admin_get("/metrics")
assert status == 200 and b"treelattice_" in body, (status, body[:200])
status, body = admin_get("/statusz")
statusz = json.loads(body)
assert status == 200 and statusz["snapshot_version"] >= 1, statusz
status, body = admin_get("/slowz")
slowz = json.loads(body)
assert status == 200, (status, body[:200])
entries = slowz["slowz"]["entries"]
assert entries, "no slow queries at a 2 ms worker delay"
for entry in entries:
    assert entry["req"] > 0 and "stages_micros" in entry, entry
# Both stream shapes must be represented: single entries carry the twig
# shape, batch entries carry the query count of their line.
singles_seen = [e for e in entries if e.get("batch_size", 1) <= 1]
batches_seen = [e for e in entries if e.get("batch_size", 1) > 1]
assert singles_seen and singles_seen[0]["shape"]["size"] >= 1, entries[:2]
assert batches_seen and batches_seen[0]["batch_size"] == 5, entries[:2]
print(f"admin plane: 4 endpoints ok, {len(slowz['slowz']['entries'])} "
      "slow queries captured")

# Second wave — 30 singles + 4 batches of 5 — then SIGTERM while it is
# in flight: the drain must answer everything admitted (whole batches
# included) and close cleanly (EOF, no RST, no hang).
wave = b"".join(
    b'{"query": "item(name)", "id": %d}\n' % i
    for i in range(1000, 1030))
wave += b"".join(
    b"[" + b",".join(
        b'{"query": "item(name)", "id": %d}' % (1030 + 5 * k + j)
        for j in range(5)) + b"]\n"
    for k in range(4))
main.sendall(wave)
time.sleep(0.1)
os.kill(pid, signal.SIGTERM)
drained = 0
while True:
    try:
        chunk = main.recv(65536)
    except ConnectionResetError:
        sys.exit("connection reset during drain")
    if not chunk:
        break
    buf += chunk
    while b"\n" in buf:
        line, buf = buf.split(b"\n", 1)
        record = json.loads(line)
        items = record if isinstance(record, list) else [record]
        for item in items:
            assert 1000 <= item["id"] < 1050, item
            drained += 1
main.close()
print(f"tcp soak: 200 answered, {drained} of the in-flight wave drained")
PYEOF

  RC=0
  wait "$SERVE_PID" || RC=$?
  test "$RC" -eq 0
  grep -q "serve: drained" "$WORKDIR/tcp.err"

  # The server's own accounting must conserve requests exactly-once, and
  # the chaos connections must have registered as resets.
  python3 - "$WORKDIR/tcp.err" <<'PYEOF'
import re, sys

with open(sys.argv[1]) as f:
    text = f.read()
m = re.search(
    r"serve: drained \(accepted=(\d+) rejected=(\d+) admitted=(\d+) "
    r"delivered=(\d+) orphaned=(\d+) resets=(\d+)", text)
assert m, f"no drain tally in stderr:\n{text}"
accepted, rejected, admitted, delivered, orphaned, resets = map(
    int, m.groups())
assert admitted == delivered + orphaned, m.group(0)
assert delivered >= 200, m.group(0)
assert resets >= 3, m.group(0)
print("tcp drain tally conserves:", m.group(0))
PYEOF
else
  echo "python3 not found; skipping TCP soak leg" >&2
fi

echo "serve smoke test passed"
