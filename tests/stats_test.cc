#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "xml/parser.h"
#include "xml/stats.h"

namespace treelattice {
namespace {

TEST(DocumentStatsTest, EmptyDocument) {
  Document doc;
  DocumentStats stats = ComputeDocumentStats(doc);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_labels, 0u);
  EXPECT_EQ(stats.max_depth, 0);
}

TEST(DocumentStatsTest, SingleNode) {
  Document doc;
  doc.AddNode("only", kInvalidNode);
  DocumentStats stats = ComputeDocumentStats(doc);
  EXPECT_EQ(stats.num_nodes, 1u);
  EXPECT_EQ(stats.num_labels, 1u);
  EXPECT_EQ(stats.max_depth, 0);
  EXPECT_EQ(stats.num_leaves, 1u);
  EXPECT_EQ(stats.max_fanout, 0);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 0.0);
}

TEST(DocumentStatsTest, SmallTree) {
  // r(a(b,c),a): depths 0,1,2,2,1; fanouts r=2, first a=2.
  auto doc = ParseXmlString("<r><a><b/><c/></a><a/></r>");
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeDocumentStats(*doc);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_labels, 4u);
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_EQ(stats.num_leaves, 3u);
  EXPECT_EQ(stats.max_fanout, 2);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 2.0);
  EXPECT_DOUBLE_EQ(stats.fanout_variance, 0.0);
  ASSERT_EQ(stats.depth_histogram.size(), 3u);
  EXPECT_EQ(stats.depth_histogram[0], 1u);
  EXPECT_EQ(stats.depth_histogram[1], 2u);
  EXPECT_EQ(stats.depth_histogram[2], 2u);
  EXPECT_DOUBLE_EQ(stats.avg_depth, (0 + 1 + 2 + 2 + 1) / 5.0);
}

TEST(DocumentStatsTest, FanoutVariance) {
  // One parent with 1 child, one with 3: mean 2, variance 1.
  auto doc = ParseXmlString("<r><a><x/></a><b><x/><x/><x/></b></r>");
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeDocumentStats(*doc);
  // Interior nodes: r (2 children), a (1), b (3): mean 2, var 2/3.
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 2.0);
  EXPECT_NEAR(stats.fanout_variance, 2.0 / 3.0, 1e-12);
}

TEST(DocumentStatsTest, HistogramSumsToNodeCount) {
  DatasetOptions options;
  options.scale = 40;
  Document doc = GenerateXmark(options);
  DocumentStats stats = ComputeDocumentStats(doc);
  size_t total = 0;
  for (size_t c : stats.depth_histogram) total += c;
  EXPECT_EQ(total, stats.num_nodes);
  EXPECT_EQ(stats.depth_histogram.size(),
            static_cast<size_t>(stats.max_depth) + 1);
  EXPECT_GT(stats.fanout_variance, 0.0);
}

}  // namespace
}  // namespace treelattice
