#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/random_tree.h"
#include "match/matcher.h"
#include "workload/workload.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Document TestDocument() {
  DatasetOptions options;
  options.scale = 60;
  return GeneratePsd(options);
}

TEST(TwigFromDocumentNodesTest, ExtractsConnectedSet) {
  auto doc = ParseXmlString("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  auto twig = TwigFromDocumentNodes(*doc, {0, 1, 3});
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(twig->size(), 3);
  EXPECT_EQ(twig->ToString(doc->dict()), "a(b,d)");
}

TEST(TwigFromDocumentNodesTest, NonRootAnchoredSubtree) {
  auto doc = ParseXmlString("<a><b><c/><d/></b></a>");
  ASSERT_TRUE(doc.ok());
  auto twig = TwigFromDocumentNodes(*doc, {1, 2, 3});
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(twig->ToString(doc->dict()), "b(c,d)");
}

TEST(TwigFromDocumentNodesTest, RejectsDisconnectedAndEmpty) {
  auto doc = ParseXmlString("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(TwigFromDocumentNodes(*doc, {2, 3}).ok());
  EXPECT_FALSE(TwigFromDocumentNodes(*doc, {}).ok());
}

TEST(TwigFromDocumentNodesTest, DeduplicatesInput) {
  auto doc = ParseXmlString("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  auto twig = TwigFromDocumentNodes(*doc, {0, 1, 0, 1});
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(twig->size(), 2);
}

TEST(PositiveWorkloadTest, AllQueriesArePositiveAndRightSized) {
  Document doc = TestDocument();
  MatchCounter counter(doc);
  for (int size : {3, 5, 7}) {
    WorkloadOptions options;
    options.query_size = size;
    options.num_queries = 25;
    auto queries = GeneratePositiveWorkload(doc, options);
    ASSERT_TRUE(queries.ok()) << queries.status().ToString();
    EXPECT_GT(queries->size(), 5u);
    for (const Twig& q : *queries) {
      EXPECT_EQ(q.size(), size);
      EXPECT_GT(counter.Count(q), 0u) << q.ToDebugString();
    }
  }
}

TEST(PositiveWorkloadTest, QueriesAreDistinct) {
  Document doc = TestDocument();
  WorkloadOptions options;
  options.query_size = 5;
  options.num_queries = 40;
  auto queries = GeneratePositiveWorkload(doc, options);
  ASSERT_TRUE(queries.ok());
  std::unordered_set<std::string> codes;
  for (const Twig& q : *queries) codes.insert(q.CanonicalCode());
  EXPECT_EQ(codes.size(), queries->size());
}

TEST(PositiveWorkloadTest, DeterministicForSeed) {
  Document doc = TestDocument();
  WorkloadOptions options;
  options.query_size = 4;
  options.num_queries = 10;
  auto a = GeneratePositiveWorkload(doc, options);
  auto b = GeneratePositiveWorkload(doc, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].CanonicalCode(), (*b)[i].CanonicalCode());
  }
}

TEST(PositiveWorkloadTest, RejectsBadArguments) {
  Document doc = TestDocument();
  WorkloadOptions options;
  options.query_size = 0;
  EXPECT_FALSE(GeneratePositiveWorkload(doc, options).ok());

  Document tiny;
  tiny.AddNode("a", kInvalidNode);
  options.query_size = 5;
  EXPECT_FALSE(GeneratePositiveWorkload(tiny, options).ok());
}

TEST(PositiveWorkloadTest, StopsWhenPatternSpaceExhausted) {
  // A tiny uniform document has very few distinct size-3 patterns; the
  // generator must terminate and return what exists.
  auto doc = ParseXmlString("<a><b><c/></b><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  WorkloadOptions options;
  options.query_size = 3;
  options.num_queries = 100;
  options.max_attempts = 5000;
  options.allow_duplicate_siblings = true;
  auto queries = GeneratePositiveWorkload(*doc, options);
  ASSERT_TRUE(queries.ok());
  EXPECT_GE(queries->size(), 2u);  // a(b,b) and a(b(c))
  EXPECT_LT(queries->size(), 10u);

  // With the default (paper) distinct-siblings rule, a(b,b) is excluded.
  options.allow_duplicate_siblings = false;
  auto distinct = GeneratePositiveWorkload(*doc, options);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->size(), 1u);
  EXPECT_EQ((*distinct)[0].ToString(doc->dict()), "a(b(c))");
}

TEST(NegativeWorkloadTest, AllQueriesHaveZeroSelectivity) {
  Document doc = TestDocument();
  MatchCounter counter(doc);
  WorkloadOptions options;
  options.query_size = 5;
  options.num_queries = 20;
  auto queries = GenerateNegativeWorkload(doc, options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_GT(queries->size(), 5u);
  for (const Twig& q : *queries) {
    EXPECT_EQ(counter.Count(q), 0u) << q.ToDebugString();
    EXPECT_EQ(q.size(), 5);
  }
}

TEST(NegativeWorkloadTest, DeterministicForSeed) {
  Document doc = TestDocument();
  WorkloadOptions options;
  options.query_size = 4;
  options.num_queries = 10;
  auto a = GenerateNegativeWorkload(doc, options);
  auto b = GenerateNegativeWorkload(doc, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].CanonicalCode(), (*b)[i].CanonicalCode());
  }
}

}  // namespace
}  // namespace treelattice
