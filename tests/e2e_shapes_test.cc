// End-to-end regression tests pinning the *shapes* of the reproduced
// experiments at small scale: if a refactor silently breaks one of the
// paper's qualitative results (who wins on which dataset, pruning savings,
// construction-cost ordering), these tests fail before the benches do.
// Scales are kept small so the whole file runs in a few seconds.

#include <gtest/gtest.h>

#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "harness/experiment.h"
#include "harness/metrics.h"
#include "treesketch/tree_sketch.h"

namespace treelattice {
namespace {

ExperimentOptions SmallOptions() {
  ExperimentOptions options;
  options.scale = 250;               // a few thousand nodes per dataset
  options.queries_per_size = 40;
  options.treesketch_budget_bytes = 1024;  // scaled-down budget
  return options;
}

/// Average error over sizes {5,6,7} for one estimator index in the sweep
/// (0 = recursive, 1 = voting, 2 = fixed, 3 = treesketches).
double AvgError(const AccuracySweep& sweep, size_t estimator) {
  double sum = 0;
  for (const auto& runs : sweep.runs) sum += runs[estimator].avg_error_pct;
  return sum / static_cast<double>(sweep.runs.size());
}

TEST(E2EShapes, XmarkTreeLatticeBeatsTreeSketches) {
  auto bundle = PrepareDataset("xmark", SmallOptions());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto sweep = RunAccuracySweep(*bundle, SmallOptions(), 5, 7);
  ASSERT_TRUE(sweep.ok());
  // The dataset's fanout variance + close-window correlations must hurt
  // the merged synopsis far more than the lattice (paper Fig. 7d).
  EXPECT_LT(AvgError(*sweep, 0), AvgError(*sweep, 3));
}

TEST(E2EShapes, ImdbTreeSketchesBeatsTreeLatticeAtLargeSizes) {
  // The synopsis needs enough budget to separate the movie types; keep the
  // standard 3 KB here (the tighter 1 KB of the other tests starves it).
  ExperimentOptions options = SmallOptions();
  options.treesketch_budget_bytes = 3 * 1024;
  auto bundle = PrepareDataset("imdb", options);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto sweep = RunAccuracySweep(*bundle, options, 6, 7);
  ASSERT_TRUE(sweep.ok());
  // Cross-branch movie-type correlations favour the clustering synopsis
  // (paper Fig. 7b).
  EXPECT_LT(AvgError(*sweep, 3), AvgError(*sweep, 0));
}

TEST(E2EShapes, AllEstimatorsExactAtLatticeLevel) {
  auto bundle = PrepareDataset("psd", SmallOptions(), /*build_sketch=*/false);
  ASSERT_TRUE(bundle.ok());
  MatchCounter counter(bundle->doc);
  auto workload = PrepareWorkload(bundle->doc, counter, 4, SmallOptions());
  ASSERT_TRUE(workload.ok());
  RecursiveDecompositionEstimator recursive(&bundle->summary);
  auto run = RunEstimator(recursive, *workload);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->avg_error_pct, 0.0);
}

TEST(E2EShapes, ErrorGrowsWithQuerySize) {
  auto bundle = PrepareDataset("nasa", SmallOptions(), /*build_sketch=*/false);
  ASSERT_TRUE(bundle.ok());
  auto options = SmallOptions();
  MatchCounter counter(bundle->doc);
  RecursiveDecompositionEstimator recursive(&bundle->summary);
  auto small = PrepareWorkload(bundle->doc, counter, 5, options);
  auto large = PrepareWorkload(bundle->doc, counter, 8, options);
  ASSERT_TRUE(small.ok() && large.ok());
  auto small_run = RunEstimator(recursive, *small);
  auto large_run = RunEstimator(recursive, *large);
  ASSERT_TRUE(small_run.ok() && large_run.ok());
  // Error propagation (paper Section 5.2): more decomposition levels, more
  // error.
  EXPECT_LE(small_run->avg_error_pct, large_run->avg_error_pct + 1e-9);
}

TEST(E2EShapes, PruningSavesMostOnIndependentData) {
  auto options = SmallOptions();
  auto psd = PrepareDataset("psd", options, /*build_sketch=*/false);
  ASSERT_TRUE(psd.ok());
  PruneStats stats;
  auto pruned = PruneDerivablePatterns(psd->summary, PruneOptions(), &stats);
  ASSERT_TRUE(pruned.ok());
  // Near-independent branches => most level 3-4 patterns are derivable.
  EXPECT_LT(stats.bytes_after, stats.bytes_before / 2);
}

TEST(E2EShapes, LatticeConstructionFasterThanExhaustiveTreeSketches) {
  ExperimentOptions options = SmallOptions();
  options.sketch_merge_candidates = 0;  // faithful exhaustive merging
  auto bundle = PrepareDataset("psd", options);
  ASSERT_TRUE(bundle.ok());
  // Table 3's headline at mini scale: mining beats bottom-up clustering.
  EXPECT_LT(bundle->build_stats.build_seconds,
            bundle->sketch_stats.build_seconds);
}

}  // namespace
}  // namespace treelattice
