// Serving-layer suite: snapshot holder semantics, hot reload through the
// fault-injecting Env (retries, salvage policy, keep-old-on-failure), the
// request-line protocol, and the Server itself — round trips, load
// shedding, degraded answers under budget, and exactly-once drain.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "obs/metrics.h"
#include "serve/estimate_cache.h"
#include "serve/request_trace.h"
#include "serve/server.h"
#include "serve/slow_log.h"
#include "serve/snapshot.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "twig/twig.h"
#include "util/hash.h"
#include "util/json.h"
#include "xml/label_dict.h"

namespace treelattice {
namespace serve {
namespace {

/// Builds a small summary (complete through level 2) and saves it as a v2
/// container at `path`, returning the dict used.
LabelDict WriteTestSummary(Env* env, const std::string& path,
                           uint64_t scale = 1) {
  LabelDict dict;
  LatticeSummary summary(2);
  auto insert = [&](const std::string& text, uint64_t count) {
    Result<Twig> twig = Twig::Parse(text, &dict);
    ASSERT_TRUE(twig.ok()) << twig.status().ToString();
    ASSERT_TRUE(summary.Insert(*twig, count * scale).ok());
  };
  insert("a", 10);
  insert("b", 8);
  insert("c", 6);
  insert("a(b)", 5);
  insert("b(c)", 4);
  // Wide-star support: a query over many distinct children of `a` makes
  // the voting recursion combinatorially expensive while the fixed-size
  // sweep stays a few hundred lookups — the gap the degradation tests
  // aim their step budgets into.
  for (int i = 0; i < 12; ++i) {
    const std::string child = "t" + std::to_string(i);
    insert(child, 20 + static_cast<uint64_t>(i));
    insert("a(" + child + ")", 3 + static_cast<uint64_t>(i));
  }
  summary.set_complete_through_level(2);
  EXPECT_TRUE(SaveSummaryV2(summary, &dict, env, path).ok());
  return dict;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SnapshotHolderTest, EmptyUntilFirstSwapThenVersioned) {
  SnapshotHolder holder;
  EXPECT_EQ(holder.Get(), nullptr);
  EXPECT_EQ(holder.version(), 0);

  LabelDict dict;
  auto snapshot =
      std::make_shared<SummarySnapshot>(LatticeSummary(2), LabelDict(dict));
  EXPECT_EQ(holder.Swap(snapshot), 1);
  ASSERT_NE(holder.Get(), nullptr);
  EXPECT_EQ(holder.Get()->version, 1);

  auto second =
      std::make_shared<SummarySnapshot>(LatticeSummary(2), LabelDict(dict));
  EXPECT_EQ(holder.Swap(second), 2);
  EXPECT_EQ(holder.version(), 2);
}

TEST(SnapshotHolderTest, InFlightReadersKeepTheirSnapshot) {
  SnapshotHolder holder;
  LabelDict dict;
  holder.Swap(
      std::make_shared<SummarySnapshot>(LatticeSummary(2), LabelDict(dict)));
  std::shared_ptr<const SummarySnapshot> in_flight = holder.Get();
  holder.Swap(
      std::make_shared<SummarySnapshot>(LatticeSummary(2), LabelDict(dict)));
  EXPECT_EQ(in_flight->version, 1);       // untouched by the swap
  EXPECT_EQ(holder.Get()->version, 2);    // new readers see the new one
}

TEST(ReloadTest, LoadsV2SummaryWithEmbeddedDict) {
  const std::string path = TempPath("tl_serve_reload_ok.tls");
  WriteTestSummary(Env::Default(), path);

  SnapshotHolder holder;
  ReloadOptions options;
  options.backoff_millis = 0.0;
  ASSERT_TRUE(ReloadSummary(Env::Default(), path, options, &holder).ok());
  std::shared_ptr<const SummarySnapshot> snapshot = holder.Get();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_FALSE(snapshot->salvaged);
  EXPECT_GT(snapshot->summary.NumPatterns(), 0u);
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
}

TEST(ReloadTest, ReadFaultKeepsPreviousSnapshotAndReportsError) {
  const std::string path = TempPath("tl_serve_reload_fault.tls");
  WriteTestSummary(Env::Default(), path);

  FaultInjectingEnv env(Env::Default());
  SnapshotHolder holder;
  ReloadOptions options;
  options.attempts = 3;
  options.backoff_millis = 0.0;
  ASSERT_TRUE(ReloadSummary(&env, path, options, &holder).ok());
  const int64_t reads_after_first = env.reads();

  env.config().fail_read = true;
  Status failed = ReloadSummary(&env, path, options, &holder);
  EXPECT_FALSE(failed.ok());
  // All three attempts actually hit the Env before giving up.
  EXPECT_GT(env.reads(), reads_after_first);
  // The serving snapshot is still the good one from before the fault.
  ASSERT_NE(holder.Get(), nullptr);
  EXPECT_EQ(holder.Get()->version, 1);
  EXPECT_EQ(holder.version(), 1);

  // The fault heals; the next reload succeeds and bumps the version.
  env.config().fail_read = false;
  EXPECT_TRUE(ReloadSummary(&env, path, options, &holder).ok());
  EXPECT_EQ(holder.Get()->version, 2);
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
}

TEST(ReloadTest, SalvagedLoadRejectedUnlessAccepted) {
  const std::string path = TempPath("tl_serve_reload_salvage.tls");
  WriteTestSummary(Env::Default(), path);

  // Truncate the tail: the v2 container salvages the intact prefix.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &bytes).ok());
  ASSERT_GT(bytes.size(), 24u);
  ASSERT_TRUE(WriteFileAtomic(Env::Default(), path,
                              bytes.substr(0, bytes.size() - 16))
                  .ok());

  SnapshotHolder holder;
  ReloadOptions strict;
  strict.attempts = 1;
  strict.backoff_millis = 0.0;
  // Hot-reload policy: a damaged file must not replace a good snapshot.
  Status rejected = ReloadSummary(Env::Default(), path, strict, &holder);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(holder.Get(), nullptr);

  // Startup policy: a salvaged snapshot beats not serving at all.
  ReloadOptions lenient = strict;
  lenient.accept_salvaged = true;
  Status accepted = ReloadSummary(Env::Default(), path, lenient, &holder);
  if (accepted.ok()) {
    ASSERT_NE(holder.Get(), nullptr);
    EXPECT_TRUE(holder.Get()->salvaged);
  } else {
    // Some truncations destroy the dictionary section too; then even the
    // lenient load fails, and the holder must still be empty, not torn.
    EXPECT_EQ(holder.Get(), nullptr);
  }
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
}

TEST(RequestLineTest, BareQueryAndJsonEnvelope) {
  Result<ServeRequest> bare = ParseRequestLine("  a(b,c)\r\n");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->query, "a(b,c)");
  EXPECT_EQ(bare->id, 0u);
  EXPECT_EQ(bare->deadline_millis, 0.0);

  Result<ServeRequest> envelope = ParseRequestLine(
      R"({"query":"/a/b[c]","deadline_ms":25.5,"max_steps":1000,"id":7})");
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->query, "/a/b[c]");
  EXPECT_DOUBLE_EQ(envelope->deadline_millis, 25.5);
  EXPECT_EQ(envelope->max_work_steps, 1000u);
  EXPECT_EQ(envelope->id, 7u);
}

TEST(RequestLineTest, MalformedInputsRejectedCleanly) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("   \r\n").ok());
  EXPECT_FALSE(ParseRequestLine("{not json").ok());
  EXPECT_FALSE(ParseRequestLine("{\"no_query\":1}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"query\":\"\"}").ok());
  EXPECT_FALSE(ParseRequestLine("{\"query\":\"a\",\"deadline_ms\":-1}").ok());
  // Only '{'-prefixed lines are JSON envelopes; anything else is a bare
  // query and gets its real parse error at estimation time.
  EXPECT_TRUE(ParseRequestLine("[\"query\"]").ok());
}

TEST(ResponseJsonTest, SuccessAndErrorLinesAreValidJson) {
  ServeResponse ok_response;
  ok_response.id = 3;
  ok_response.query = "a(b)";
  ok_response.ok = true;
  ok_response.estimate = 5.0;
  ok_response.rung = "primary";
  ok_response.snapshot_version = 2;
  Result<JsonValue> ok_json = ParseJson(ok_response.ToJsonLine());
  ASSERT_TRUE(ok_json.ok()) << ok_json.status().ToString();
  EXPECT_DOUBLE_EQ(ok_json->Find("estimate")->number_value, 5.0);
  EXPECT_EQ(ok_json->Find("rung")->string_value, "primary");

  ServeResponse error_response;
  error_response.id = 4;
  error_response.query = "quotes \" and \\ backslashes";
  error_response.error_code = "InvalidArgument";
  error_response.error_message = "bad \"query\"";
  Result<JsonValue> error_json = ParseJson(error_response.ToJsonLine());
  ASSERT_TRUE(error_json.ok()) << error_json.status().ToString();
  EXPECT_FALSE(error_json->Find("ok")->bool_value);
  EXPECT_EQ(error_json->Find("error")->Find("code")->string_value,
            "InvalidArgument");
}

/// Collects responses under a lock and indexes them by request id.
struct ResponseCollector {
  std::mutex mu;
  std::vector<ServeResponse> responses;

  Server::ResponseSink Sink() {
    return [this](const ServeResponse& response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(response);
    };
  }

  std::map<uint64_t, ServeResponse> ById() {
    std::lock_guard<std::mutex> lock(mu);
    std::map<uint64_t, ServeResponse> by_id;
    for (const ServeResponse& response : responses) {
      EXPECT_EQ(by_id.count(response.id), 0u)
          << "duplicate response for id " << response.id;
      by_id[response.id] = response;
    }
    return by_id;
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("tl_serve_server.tls");
    WriteTestSummary(Env::Default(), path_);
    ReloadOptions options;
    options.backoff_millis = 0.0;
    ASSERT_TRUE(
        ReloadSummary(Env::Default(), path_, options, &snapshots_).ok());
  }

  void TearDown() override {
    ASSERT_TRUE(Env::Default()->DeleteFile(path_).ok());
  }

  std::string path_;
  SnapshotHolder snapshots_;
  ResponseCollector collector_;
};

TEST_F(ServerTest, RoundTripsQueriesExactlyOnce) {
  ServerOptions options;
  options.workers = 4;
  {
    Server server(&snapshots_, options, collector_.Sink());
    for (uint64_t id = 1; id <= 50; ++id) {
      ServeRequest request;
      request.id = id;
      request.query = (id % 2 == 0) ? "a(b)" : "b(c)";
      EXPECT_TRUE(server.Submit(std::move(request)));
    }
    server.Shutdown();
    Server::Stats stats = server.GetStats();
    EXPECT_EQ(stats.submitted, 50u);
    EXPECT_EQ(stats.ok, 50u);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.shed, 0u);
  }
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 50u);
  for (const auto& [id, response] : by_id) {
    EXPECT_TRUE(response.ok) << response.error_message;
    EXPECT_DOUBLE_EQ(response.estimate, (id % 2 == 0) ? 5.0 : 4.0);
    EXPECT_EQ(response.rung, "primary");
    EXPECT_FALSE(response.degraded);
    EXPECT_EQ(response.snapshot_version, 1);
  }
}

TEST_F(ServerTest, MalformedQueriesAnswerWithErrorsNotCrashes) {
  Server server(&snapshots_, ServerOptions(), collector_.Sink());
  ServeRequest bad;
  bad.id = 1;
  bad.query = "((((";
  EXPECT_TRUE(server.Submit(std::move(bad)));
  server.Shutdown();
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 1u);
  EXPECT_FALSE(by_id[1].ok);
  EXPECT_FALSE(by_id[1].error_code.empty());
  EXPECT_EQ(server.GetStats().errors, 1u);
}

TEST_F(ServerTest, NoSnapshotYieldsNotFoundResponse) {
  SnapshotHolder empty;
  Server server(&empty, ServerOptions(), collector_.Sink());
  ServeRequest request;
  request.id = 9;
  request.query = "a(b)";
  EXPECT_TRUE(server.Submit(std::move(request)));
  server.Shutdown();
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 1u);
  EXPECT_FALSE(by_id[9].ok);
  EXPECT_EQ(by_id[9].error_code, "NotFound");
}

TEST_F(ServerTest, FullQueueShedsWithResourceExhausted) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.worker_delay_millis = 20.0;  // hold the worker so the queue fills
  Server server(&snapshots_, options, collector_.Sink());
  int admitted = 0;
  for (uint64_t id = 1; id <= 20; ++id) {
    ServeRequest request;
    request.id = id;
    request.query = "a(b)";
    if (server.Submit(std::move(request))) ++admitted;
  }
  server.Shutdown();

  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(admitted));
  EXPECT_EQ(stats.shed, 20u - static_cast<uint64_t>(admitted));
  EXPECT_GT(stats.shed, 0u) << "queue never filled; shedding untested";

  // Exactly one response per request either way; shed ones carry the
  // load-shedding error code.
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 20u);
  int shed_seen = 0;
  for (const auto& [id, response] : by_id) {
    if (!response.ok) {
      EXPECT_EQ(response.error_code, "ResourceExhausted");
      ++shed_seen;
    }
  }
  EXPECT_EQ(shed_seen, 20 - admitted);
}

TEST_F(ServerTest, StarvedRequestsDegradeWithRungRecorded) {
  // A per-request step budget the voting primary cannot meet on the
  // star-12 query (>2^11 distinct sub-stars) but the fixed-size sweep
  // (a few hundred lookups) fits comfortably: the ladder answers from a
  // fallback rung and the response says so.
  ServerOptions options;
  options.default_max_work_steps = 1000;
  Server server(&snapshots_, options, collector_.Sink());
  ServeRequest request;
  request.id = 1;
  request.query = "a(t0,t1,t2,t3,t4,t5,t6,t7,t8,t9,t10,t11)";
  EXPECT_TRUE(server.Submit(std::move(request)));
  server.Shutdown();

  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 1u);
  const ServeResponse& response = by_id[1];
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_TRUE(response.degraded);
  EXPECT_NE(response.rung, "primary");
  EXPECT_EQ(server.GetStats().degraded, 1u);
}

TEST_F(ServerTest, UnknownLabelsEstimateZeroAcrossReload) {
  // Labels the snapshot has never seen intern fresh ids in the worker's
  // private dict copy and miss every summary lookup — estimate 0, not a
  // crash, and the shared snapshot dict is never mutated.
  Server server(&snapshots_, ServerOptions(), collector_.Sink());
  ServeRequest request;
  request.id = 1;
  request.query = "nosuch(labels)";
  EXPECT_TRUE(server.Submit(std::move(request)));
  server.Shutdown();
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 1u);
  ASSERT_TRUE(by_id[1].ok) << by_id[1].error_message;
  EXPECT_DOUBLE_EQ(by_id[1].estimate, 0.0);
}

TEST_F(ServerTest, WorkersPickUpHotSwappedSnapshot) {
  // Double every count, rewrite the file, reload, and query again: the
  // same query must now answer from the new snapshot (version 2, doubled
  // estimate) without restarting the server.
  Server server(&snapshots_, ServerOptions(), collector_.Sink());
  ServeRequest first;
  first.id = 1;
  first.query = "a(b)";
  EXPECT_TRUE(server.Submit(std::move(first)));
  while (collector_.ById().empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  WriteTestSummary(Env::Default(), path_, /*scale=*/2);
  ReloadOptions options;
  options.backoff_millis = 0.0;
  ASSERT_TRUE(
      ReloadSummary(Env::Default(), path_, options, &snapshots_).ok());

  ServeRequest second;
  second.id = 2;
  second.query = "a(b)";
  EXPECT_TRUE(server.Submit(std::move(second)));
  server.Shutdown();

  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_DOUBLE_EQ(by_id[1].estimate, 5.0);
  EXPECT_EQ(by_id[1].snapshot_version, 1);
  EXPECT_DOUBLE_EQ(by_id[2].estimate, 10.0);
  EXPECT_EQ(by_id[2].snapshot_version, 2);
}

TEST(EstimateCacheTest, VersionFenceDropsStaleEntries) {
  EstimateCache cache(EstimateCache::Options{});
  const std::string code = "0(1)";
  const uint64_t hash = HashBytes(code);

  cache.Put(/*snapshot_version=*/1, hash, code, 5.0);
  ASSERT_TRUE(cache.Get(1, hash, code).has_value());
  EXPECT_DOUBLE_EQ(*cache.Get(1, hash, code), 5.0);

  // A reader on the next snapshot must never see the version-1 value:
  // the first touch at version 2 clears the shard.
  EXPECT_FALSE(cache.Get(2, hash, code).has_value());
  EXPECT_EQ(cache.size(), 0u);
  cache.Put(2, hash, code, 10.0);
  EXPECT_DOUBLE_EQ(*cache.Get(2, hash, code), 10.0);
  EXPECT_GT(cache.GetStats().invalidations, 0u);
}

TEST(EstimateCacheTest, LruEvictsOldestWithinCapacity) {
  EstimateCache::Options options;
  options.capacity = 4;
  options.shards = 1;  // one shard so the LRU order is fully observable
  EstimateCache cache(options);

  std::vector<std::string> codes = {"0(1)", "0(2)", "0(3)", "0(4)", "0(5)"};
  for (size_t i = 0; i < 4; ++i) {
    cache.Put(1, HashBytes(codes[i]), codes[i], static_cast<double>(i));
  }
  // Touch the oldest so the second-oldest becomes the eviction victim.
  ASSERT_TRUE(cache.Get(1, HashBytes(codes[0]), codes[0]).has_value());
  cache.Put(1, HashBytes(codes[4]), codes[4], 4.0);

  EXPECT_TRUE(cache.Get(1, HashBytes(codes[0]), codes[0]).has_value());
  EXPECT_FALSE(cache.Get(1, HashBytes(codes[1]), codes[1]).has_value());
  EXPECT_TRUE(cache.Get(1, HashBytes(codes[4]), codes[4]).has_value());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
}

TEST(EstimateCacheTest, InvalidateEmptiesEveryShard) {
  EstimateCache cache(EstimateCache::Options{});
  for (int i = 0; i < 32; ++i) {
    const std::string code = "0(" + std::to_string(i + 1) + ")";
    cache.Put(1, HashBytes(code), code, static_cast<double>(i));
  }
  EXPECT_GT(cache.size(), 0u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  const std::string probe = "0(1)";
  EXPECT_FALSE(cache.Get(1, HashBytes(probe), probe).has_value());
}

TEST_F(ServerTest, RepeatedQueryServedFromCacheExactly) {
  ServerOptions options;
  options.workers = 1;  // deterministic request order
  Server server(&snapshots_, options, collector_.Sink());
  for (uint64_t id = 1; id <= 3; ++id) {
    ServeRequest request;
    request.id = id;
    request.query = "a(b)";
    EXPECT_TRUE(server.Submit(std::move(request)));
  }
  server.Shutdown();

  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_FALSE(by_id[1].cached);  // cold
  EXPECT_TRUE(by_id[2].cached);
  EXPECT_TRUE(by_id[3].cached);
  for (const auto& [id, response] : by_id) {
    ASSERT_TRUE(response.ok) << response.error_message;
    // A cached answer is the exact estimate, never an approximation.
    EXPECT_DOUBLE_EQ(response.estimate, 5.0);
    EXPECT_EQ(response.rung, "primary");
    EXPECT_FALSE(response.degraded);
  }
  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(ServerTest, ReloadDropsEstimateCacheSoStaleCountsNeverServe) {
  // Warm the cache at snapshot v1, double every count and hot-swap to v2,
  // then repeat the query: the answer must come from the new snapshot's
  // counts — a 5.0 after the swap would be the cache serving stale data.
  ServerOptions options;
  options.workers = 1;
  Server server(&snapshots_, options, collector_.Sink());
  auto submit = [&](uint64_t id) {
    ServeRequest request;
    request.id = id;
    request.query = "a(b)";
    EXPECT_TRUE(server.Submit(std::move(request)));
  };
  submit(1);
  submit(2);
  while (collector_.ById().size() < 2u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  WriteTestSummary(Env::Default(), path_, /*scale=*/2);
  ReloadOptions reload;
  reload.backoff_millis = 0.0;
  ASSERT_TRUE(ReloadSummary(Env::Default(), path_, reload, &snapshots_).ok());

  submit(3);
  submit(4);
  server.Shutdown();

  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 4u);
  EXPECT_DOUBLE_EQ(by_id[1].estimate, 5.0);
  EXPECT_FALSE(by_id[1].cached);
  EXPECT_DOUBLE_EQ(by_id[2].estimate, 5.0);
  EXPECT_TRUE(by_id[2].cached);
  // Post-swap: fresh counts, recomputed then re-cached under version 2.
  EXPECT_DOUBLE_EQ(by_id[3].estimate, 10.0);
  EXPECT_FALSE(by_id[3].cached);
  EXPECT_EQ(by_id[3].snapshot_version, 2);
  EXPECT_DOUBLE_EQ(by_id[4].estimate, 10.0);
  EXPECT_TRUE(by_id[4].cached);
}

TEST_F(ServerTest, GovernedResultsAreNeverCached) {
  // Deadline-governed answers may be cut short by the governor, so they
  // must never be inserted — a repeat of the same governed query computes
  // again instead of hitting the cache.
  ServerOptions options;
  options.workers = 1;
  options.default_deadline_millis = 10000.0;  // generous, but governed
  Server server(&snapshots_, options, collector_.Sink());
  for (uint64_t id = 1; id <= 2; ++id) {
    ServeRequest request;
    request.id = id;
    request.query = "a(b)";
    EXPECT_TRUE(server.Submit(std::move(request)));
  }
  server.Shutdown();

  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 2u);
  for (const auto& [id, response] : by_id) {
    ASSERT_TRUE(response.ok) << response.error_message;
    EXPECT_DOUBLE_EQ(response.estimate, 5.0);
    EXPECT_FALSE(response.cached);
  }
  EXPECT_EQ(server.GetStats().cache_hits, 0u);
}

TEST(ResponseJsonTest, TransportRequestIdRidesEveryLineAfterClientId) {
  ServeResponse response;
  response.id = 3;
  response.req = 99;
  response.query = "a(b)";
  response.ok = true;
  response.estimate = 5.0;
  response.rung = "primary";
  std::string line = response.ToJsonLine();
  // "id" must stay the first key (scripts grep for ^{"id":); the
  // transport-assigned request id rides second.
  EXPECT_EQ(line.rfind("{\"id\":3,\"req\":99,", 0), 0u) << line;
  Result<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("req")->number_value, 99.0);
}

TEST(SlowQueryLogTest, ThresholdGatesAndRingKeepsNewest) {
  SlowQueryLog log({/*threshold_millis=*/10.0, /*capacity=*/2});
  EXPECT_FALSE(log.ShouldRecord(9.99));
  EXPECT_TRUE(log.ShouldRecord(10.0));
  SlowQueryLog disabled({/*threshold_millis=*/0.0, /*capacity=*/2});
  EXPECT_FALSE(disabled.ShouldRecord(1e9));  // <= 0 disables entirely

  for (uint64_t i = 1; i <= 3; ++i) {
    SlowQueryLog::Entry entry;
    entry.req_id = i;
    entry.total_millis = 10.0 + static_cast<double>(i);
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total_recorded(), 3u);  // monotonic, not capped
  std::vector<SlowQueryLog::Entry> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // ring displaced the oldest
  EXPECT_EQ(snapshot[0].req_id, 3u);  // newest first
  EXPECT_EQ(snapshot[1].req_id, 2u);
}

TEST(RequestTraceTest, FinalizeComputesStageDeltasAndFeedsSlowLog) {
  obs::SetEnabledForTest(true);
  RequestTrace trace;
  trace.active = true;
  trace.req_id = 42;
  trace.framed_micros = 100;
  trace.admitted_micros = 150;
  trace.dequeued_micros = 400;
  trace.estimated_micros = 2400;
  trace.serialized_micros = 2500;
  trace.flushed_micros = 3100;
  trace.twig_size = 3;
  trace.twig_depth = 2;
  trace.twig_fanout = 1;
  trace.work_steps = 7;
  RequestOutcome outcome;
  outcome.query = "a(b(c))";
  outcome.rung = "primary";
  outcome.ok = true;
  outcome.snapshot_version = 1;

  SlowQueryLog log({/*threshold_millis=*/1.0, /*capacity=*/4});
  FinalizeRequestTrace(trace, outcome, &log);
  ASSERT_EQ(log.total_recorded(), 1u);
  std::vector<SlowQueryLog::Entry> snapshot = log.Snapshot();
  const SlowQueryLog::Entry& entry = snapshot[0];
  EXPECT_EQ(entry.req_id, 42u);
  EXPECT_EQ(entry.query, "a(b(c))");
  EXPECT_TRUE(entry.ok);
  EXPECT_EQ(entry.admit_micros, 50u);
  EXPECT_EQ(entry.queue_wait_micros, 250u);
  EXPECT_EQ(entry.estimate_micros, 2000u);
  EXPECT_EQ(entry.serialize_micros, 100u);
  EXPECT_EQ(entry.flush_micros, 600u);
  EXPECT_DOUBLE_EQ(entry.total_millis, 3.0);
  EXPECT_EQ(entry.twig_size, 3u);
  EXPECT_EQ(entry.twig_depth, 2u);
  EXPECT_EQ(entry.twig_fanout, 1u);
  EXPECT_EQ(entry.work_steps, 7u);

  // The same request against a higher threshold stays out of the ring.
  SlowQueryLog strict({/*threshold_millis=*/5.0, /*capacity=*/4});
  FinalizeRequestTrace(trace, outcome, &strict);
  EXPECT_EQ(strict.total_recorded(), 0u);

  // An inactive trace (TREELATTICE_OBS=off at Begin) records nothing.
  trace.active = false;
  FinalizeRequestTrace(trace, outcome, &log);
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST_F(ServerTest, DisabledCacheNeverMarksResponsesCached) {
  ServerOptions options;
  options.workers = 1;
  options.enable_estimate_cache = false;
  Server server(&snapshots_, options, collector_.Sink());
  for (uint64_t id = 1; id <= 2; ++id) {
    ServeRequest request;
    request.id = id;
    request.query = "a(b)";
    EXPECT_TRUE(server.Submit(std::move(request)));
  }
  server.Shutdown();
  std::map<uint64_t, ServeResponse> by_id = collector_.ById();
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_FALSE(by_id[1].cached);
  EXPECT_FALSE(by_id[2].cached);
  Server::Stats stats = server.GetStats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace treelattice
