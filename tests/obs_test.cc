// Telemetry subsystem tests (ctest label: obs): counters, gauges,
// histograms and their registry dumps, the runtime on/off gate, Chrome
// trace output, and an end-to-end check that the mining/estimation
// instrumentation actually fires.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator_metrics.h"
#include "core/recursive_estimator.h"
#include "io/env.h"
#include "mining/lattice_builder.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve_metrics.h"
#include "util/json.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::Tracer;
using obs::TraceSpan;

// Every test runs with collection forced on so a TREELATTICE_OBS=off
// environment (e.g. the overhead checker's) cannot flip expectations.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetEnabledForTest(true); }
  void TearDown() override { obs::SetEnabledForTest(true); }
};

TEST_F(ObsTest, CounterIncrementsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAddAndSetMax) {
  obs::Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 4);
  gauge.SetMax(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.SetMax(2);  // lower value must not win
  EXPECT_EQ(gauge.value(), 10);
}

TEST_F(ObsTest, HistogramSingleValue) {
  Histogram h;
  h.Record(7);
  Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 7u);
  EXPECT_EQ(snap.min, 7u);
  EXPECT_EQ(snap.max, 7u);
  // Percentiles are clamped to the observed range; with one sample every
  // quantile is that sample.
  EXPECT_DOUBLE_EQ(snap.p50, 7.0);
  EXPECT_DOUBLE_EQ(snap.p99, 7.0);
}

TEST_F(ObsTest, HistogramPercentilesBracketTrueQuantiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 5050u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 100u);
  // Log-bucketed, so only bucket-resolution accuracy is promised: the true
  // p50 (50) lies in [32, 64) and p99 (99) in [64, 100].
  EXPECT_GE(snap.p50, 32.0);
  EXPECT_LE(snap.p50, 64.0);
  EXPECT_GE(snap.p95, 64.0);
  EXPECT_LE(snap.p95, 100.0);
  EXPECT_GE(snap.p99, snap.p95);
  EXPECT_LE(snap.p99, 100.0);
}

TEST_F(ObsTest, HistogramZeroValuesAndReset) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
  h.Reset();
  EXPECT_EQ(h.GetSnapshot().count, 0u);
}

TEST_F(ObsTest, DisabledGateDropsAllUpdates) {
  obs::Counter counter;
  obs::Gauge gauge;
  Histogram h;
  obs::SetEnabledForTest(false);
  counter.Increment(5);
  gauge.Set(5);
  gauge.SetMax(9);
  h.Record(5);
  obs::SetEnabledForTest(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(h.GetSnapshot().count, 0u);
}

TEST_F(ObsTest, CounterIsThreadSafeExactTotal) {
  obs::Counter counter;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.GetSnapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  obs::Counter* a = registry.counter("test.counter");
  obs::Counter* b = registry.counter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("test.other"), a);
  EXPECT_EQ(registry.histogram("test.h"), registry.histogram("test.h"));
}

TEST_F(ObsTest, RegistryJsonIsValidAndComplete) {
  MetricsRegistry registry;
  registry.counter("test.hits")->Increment(3);
  registry.gauge("test.depth")->Set(-2);
  registry.histogram("test.lat")->Record(100);

  Result<JsonValue> parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* hits = counters->Find("test.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->number_value, 3.0);
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("test.depth")->number_value, -2.0);
  const JsonValue* lat = parsed->Find("histograms")->Find("test.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("p50")->number_value, 100.0);
}

TEST_F(ObsTest, PrometheusTextRendersAllKinds) {
  MetricsRegistry registry;
  registry.counter("test.bytes-total")->Increment(9);
  registry.gauge("test.depth")->Set(4);
  registry.histogram("test.lat")->Record(8);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE treelattice_test_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("treelattice_test_bytes_total 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE treelattice_test_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("treelattice_test_lat_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("treelattice_test_lat{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  MetricsRegistry registry;
  obs::Counter* c = registry.counter("test.c");
  c->Increment(5);
  Histogram* h = registry.histogram("test.h");
  h->Record(5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);  // cached pointer survives the reset
  EXPECT_EQ(h->GetSnapshot().count, 0u);
}

TEST_F(ObsTest, TracerEmitsValidChromeTraceJson) {
  Tracer::Start();
  {
    TraceSpan outer("outer.span", "test");
    TraceSpan inner("inner.span", "test");
    inner.SetArg("level", 3);
  }
  Tracer::Stop();
  ASSERT_EQ(Tracer::CollectedEvents(), 2u);

  Result<JsonValue> parsed = ParseJson(Tracer::ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  bool saw_arg = false;
  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_TRUE(event.Find("name")->is_string());
    EXPECT_EQ(event.Find("cat")->string_value, "test");
    EXPECT_EQ(event.Find("ph")->string_value, "X");
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
    EXPECT_TRUE(event.Find("pid")->is_number());
    EXPECT_TRUE(event.Find("tid")->is_number());
    if (const JsonValue* args = event.Find("args")) {
      const JsonValue* level = args->Find("level");
      if (level != nullptr && level->number_value == 3.0) saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_arg);
}

TEST_F(ObsTest, TracerDisabledRecordsNothing) {
  Tracer::Start();
  Tracer::Stop();
  { TraceSpan span("ignored.span", "test"); }
  EXPECT_EQ(Tracer::CollectedEvents(), 0u);
  // Start() discards any previous trace.
  Tracer::Start();
  { TraceSpan span("kept.span", "test"); }
  Tracer::Stop();
  EXPECT_EQ(Tracer::CollectedEvents(), 1u);
}

TEST_F(ObsTest, TracerRingDropsOldestBeyondCapacity) {
  Tracer::SetRingCapacity(8);
  Tracer::Start();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("ring.span", "test");
  }
  Tracer::Stop();
  // Bounded: the newest 8 events survive, the rest are counted dropped —
  // a long-running server keeps the recent past, not unbounded history.
  EXPECT_EQ(Tracer::CollectedEvents(), 8u);
  EXPECT_EQ(Tracer::DroppedEvents(), 92u);
  Result<JsonValue> parsed = ParseJson(Tracer::ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("traceEvents")->array.size(), 8u);
  Tracer::SetRingCapacity(65536);  // restore the default for later tests
  Tracer::Start();
  Tracer::Stop();
  EXPECT_EQ(Tracer::DroppedEvents(), 0u);  // Start() resets the tally
}

TEST_F(ObsTest, PeriodicFlushLeavesParseableTraceFile) {
  const std::string path = testing::TempDir() + "/tl_obs_periodic_trace.json";
  Tracer::Start();
  ASSERT_TRUE(Tracer::StartPeriodicFlush(path, 5.0).ok());
  {
    TraceSpan span("flush.span", "test");
  }
  // StopPeriodicFlush writes once more before returning, so the file holds
  // the complete trace even if no interval elapsed.
  Tracer::StopPeriodicFlush();
  Tracer::Stop();

  std::string bytes;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &bytes).ok());
  Result<JsonValue> parsed = ParseJson(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());
  EXPECT_EQ(events->array[0].Find("name")->string_value, "flush.span");
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
}

TEST_F(ObsTest, MiningAndEstimationInstrumentationFires) {
  MetricsRegistry* registry = MetricsRegistry::Default();
  registry->ResetAll();

  auto doc = ParseXmlString(
      "<r><a><b/><c/></a><a><b/><c/></a><a><b/></a><d><b/><c/></d></r>");
  ASSERT_TRUE(doc.ok());
  LatticeBuildOptions options;
  options.max_level = 2;
  Result<LatticeSummary> summary = BuildLattice(*doc, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(registry->counter("mining.patterns_inserted")->value(), 0u);
  EXPECT_GT(registry->counter("mining.candidates_generated")->value(), 0u);

  // A query above the lattice level forces decomposition: hits, misses, and
  // the depth histogram must all move.
  Result<Twig> query = Twig::Parse("r(a(b,c),d)", &doc->mutable_dict());
  ASSERT_TRUE(query.ok());
  RecursiveDecompositionEstimator estimator(&*summary);
  Result<double> estimate = estimator.Estimate(*query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(registry->counter("estimator.summary_hits")->value(), 0u);
  EXPECT_GT(registry->counter("estimator.summary_misses")->value(), 0u);
  EXPECT_GT(registry->counter("estimator.decompositions")->value(), 0u);
  EXPECT_GT(
      registry->histogram("estimator.decomposition_depth")->GetSnapshot().count,
      0u);
}

TEST_F(ObsTest, ServeAndDegradationMetricsAreRegistered) {
  // Touching the singletons registers every serve.* and estimator.*
  // governance metric in the default registry; the JSON dump must then
  // carry each name in its declared section.
  serve::ServeMetrics& sm = serve::ServeMetrics::Get();
  EstimatorMetrics& em = EstimatorMetrics::Get();
  sm.requests->Increment();
  sm.queue_depth_peak->SetMax(3);
  sm.latency_micros->Record(42);
  em.deadline_exceeded->Increment();
  em.degraded->Increment();

  Result<JsonValue> parsed = ParseJson(MetricsRegistry::Default()->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  const JsonValue* gauges = parsed->Find("gauges");
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);

  namespace names = obs::metric_names;
  for (const char* name :
       {names::kServeRequests, names::kServeResponsesOk,
        names::kServeResponsesError, names::kServeShed, names::kServeReloads,
        names::kServeReloadFailures, names::kEstimatorDeadlineExceeded,
        names::kEstimatorDegraded}) {
    EXPECT_NE(counters->Find(name), nullptr) << name;
  }
  EXPECT_NE(gauges->Find(names::kServeQueueDepthPeak), nullptr);
  EXPECT_NE(gauges->Find(names::kServeSnapshotVersion), nullptr);
  EXPECT_NE(histograms->Find(names::kServeLatencyMicros), nullptr);
  EXPECT_GE(counters->Find(names::kServeRequests)->number_value, 1.0);
  EXPECT_GE(counters->Find(names::kEstimatorDegraded)->number_value, 1.0);
}

}  // namespace
}  // namespace treelattice
