// TLSUMMARY v2 container tests: round trips with and without the embedded
// dictionary, fault-injected saves, level-by-level salvage of damaged
// files, the verify report, v1 compatibility, and the dict codec
// (including the label-id shift bug the escaped format fixes).

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"
#include "twig/twig.h"
#include "xml/dict_codec.h"

namespace treelattice {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A three-level summary with a dictionary, the shared fixture for the
/// format tests.
struct Fixture {
  LabelDict dict;
  LatticeSummary summary{3};

  Fixture() {
    EXPECT_TRUE(summary.Insert(MustParse("a", &dict), 10).ok());
    EXPECT_TRUE(summary.Insert(MustParse("b", &dict), 8).ok());
    EXPECT_TRUE(summary.Insert(MustParse("a(b)", &dict), 6).ok());
    EXPECT_TRUE(summary.Insert(MustParse("a(b,c)", &dict), 2).ok());
    summary.set_complete_through_level(3);
  }
};

TEST(SummaryV2Test, RoundTripWithDict) {
  Fixture fx;
  std::string path = TestPath("fmt_roundtrip.tls");
  ASSERT_TRUE(
      SaveSummaryV2(fx.summary, &fx.dict, Env::Default(), path).ok());

  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->format_version, 2);
  EXPECT_FALSE(loaded->salvaged);
  EXPECT_TRUE(loaded->corruption_detail.empty());
  EXPECT_EQ(loaded->summary.max_level(), 3);
  EXPECT_EQ(loaded->summary.complete_through_level(), 3);
  EXPECT_EQ(loaded->summary.NumPatterns(), 4u);
  EXPECT_EQ(*loaded->summary.Lookup(MustParse("a(b,c)", &fx.dict)), 2u);
  ASSERT_TRUE(loaded->dict.has_value());
  ASSERT_EQ(loaded->dict->size(), fx.dict.size());
  for (size_t i = 0; i < fx.dict.size(); ++i) {
    EXPECT_EQ(loaded->dict->Name(static_cast<LabelId>(i)),
              fx.dict.Name(static_cast<LabelId>(i)));
  }
}

TEST(SummaryV2Test, RoundTripWithoutDict) {
  Fixture fx;
  std::string path = TestPath("fmt_nodict.tls");
  ASSERT_TRUE(fx.summary.SaveToFile(path).ok());
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->dict.has_value());
  EXPECT_EQ(loaded->summary.NumPatterns(), 4u);
  EXPECT_EQ(loaded->summary.MemoryBytes(), fx.summary.MemoryBytes());
}

TEST(SummaryV2Test, EmptySummaryRoundTrips) {
  LatticeSummary empty(2);
  std::string path = TestPath("fmt_empty.tls");
  ASSERT_TRUE(empty.SaveToFile(path).ok());
  Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumPatterns(), 0u);
  EXPECT_EQ(loaded->max_level(), 2);
}

TEST(SummaryV2Test, VerifyReportsIntactFile) {
  Fixture fx;
  std::string path = TestPath("fmt_verify_ok.tls");
  ASSERT_TRUE(
      SaveSummaryV2(fx.summary, &fx.dict, Env::Default(), path).ok());
  Result<VerifyReport> report = VerifySummaryFile(Env::Default(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->intact);
  EXPECT_EQ(report->format_version, 2);
  EXPECT_EQ(report->max_level, 3);
  EXPECT_TRUE(report->has_dict);
  EXPECT_EQ(report->total_patterns, 4u);
  // dict + 3 levels + end marker
  ASSERT_EQ(report->sections.size(), 5u);
  for (const SectionIntegrity& section : report->sections) {
    EXPECT_TRUE(section.intact) << section.detail;
  }
  EXPECT_EQ(report->sections[1].patterns, 2u);  // level 1: a, b
  EXPECT_EQ(report->sections[2].patterns, 1u);  // level 2: a(b)
}

TEST(SummaryV2Test, TruncationSalvagesIntactPrefix) {
  Fixture fx;
  std::string path = TestPath("fmt_truncated.tls");
  ASSERT_TRUE(
      SaveSummaryV2(fx.summary, &fx.dict, Env::Default(), path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &contents).ok());

  // Chop the file so level 3 (and the end marker) are gone but levels 1-2
  // survive: cut 40 bytes, well inside the level-3 section.
  std::string truncated_path = TestPath("fmt_truncated_cut.tls");
  ASSERT_TRUE(WriteFileAtomic(Env::Default(), truncated_path,
                              contents.substr(0, contents.size() - 40))
                  .ok());

  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), truncated_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->salvaged);
  EXPECT_FALSE(loaded->corruption_detail.empty());
  // Levels 1-2 survived; level 3 did not, so completeness drops to 2.
  EXPECT_EQ(loaded->summary.complete_through_level(), 2);
  EXPECT_EQ(loaded->summary.NumPatterns(1), 2u);
  EXPECT_EQ(loaded->summary.NumPatterns(2), 1u);
  EXPECT_EQ(loaded->summary.NumPatterns(3), 0u);
  // The dictionary lives at the front and survived.
  EXPECT_TRUE(loaded->dict.has_value());

  Result<VerifyReport> report =
      VerifySummaryFile(Env::Default(), truncated_path);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->intact);
  EXPECT_EQ(report->salvage_complete_through_level, 2);
}

TEST(SummaryV2Test, CorruptMiddleLevelKeepsLaterLookups) {
  Fixture fx;
  std::string path = TestPath("fmt_midflip.tls");
  ASSERT_TRUE(fx.summary.SaveToFile(path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &contents).ok());

  // Flip one bit inside the level-2 section payload. Locate it by finding
  // the 'L' tag with level number 2 (tag byte, 8-byte size, u32 level).
  size_t pos = std::string::npos;
  for (size_t i = 8; i + 13 < contents.size(); ++i) {
    if (contents[i] == 'L' && static_cast<unsigned char>(contents[i + 9]) == 2 &&
        contents[i + 10] == 0 && contents[i + 11] == 0 &&
        contents[i + 12] == 0) {
      pos = i;
      break;
    }
  }
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 15] = static_cast<char>(contents[pos + 15] ^ 0x40);
  std::string flipped = TestPath("fmt_midflip_bad.tls");
  ASSERT_TRUE(WriteFileAtomic(Env::Default(), flipped, contents).ok());

  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), flipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->salvaged);
  // Level 2 is lost, so the completeness guarantee stops at level 1 even
  // though level 3's own checksum verified and its counts remain usable.
  EXPECT_EQ(loaded->summary.complete_through_level(), 1);
  EXPECT_EQ(loaded->summary.NumPatterns(2), 0u);
  EXPECT_EQ(loaded->summary.NumPatterns(3), 1u);
}

TEST(SummaryV2Test, HeaderCorruptionIsFatal) {
  Fixture fx;
  std::string path = TestPath("fmt_badheader.tls");
  ASSERT_TRUE(fx.summary.SaveToFile(path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &contents).ok());
  contents[10] = static_cast<char>(contents[10] ^ 0x01);  // inside header
  ASSERT_TRUE(WriteFileAtomic(Env::Default(), path, contents).ok());
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SummaryV2Test, TrailingGarbageFlagged) {
  Fixture fx;
  std::string path = TestPath("fmt_trailing.tls");
  ASSERT_TRUE(fx.summary.SaveToFile(path).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path, &contents).ok());
  ASSERT_TRUE(
      WriteFileAtomic(Env::Default(), path, contents + "EXTRA").ok());
  Result<VerifyReport> report = VerifySummaryFile(Env::Default(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->intact);
  // Nothing of the data itself was lost.
  EXPECT_EQ(report->salvage_complete_through_level, 3);
}

TEST(SummaryV2Test, FaultInjectedSaveNeverLeavesTornFile) {
  Fixture fx;
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("fmt_fault_save.tls");

  // Write an initial good version, then fail a re-save at every byte
  // budget; the good version must survive every failure mode.
  ASSERT_TRUE(SaveSummaryV2(fx.summary, &fx.dict, &env, path).ok());
  int64_t full_size = static_cast<int64_t>(*env.GetFileSize(path));
  for (int64_t budget = 0; budget < full_size; budget += 13) {
    for (bool torn : {false, true}) {
      env.Reset();
      env.config().fail_write_after_bytes = budget;
      env.config().torn_writes = torn;
      Status status = SaveSummaryV2(fx.summary, &fx.dict, &env, path);
      EXPECT_EQ(status.code(), StatusCode::kIOError);
      EXPECT_FALSE(env.FileExists(path + ".tmp"));
      Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
      ASSERT_TRUE(loaded.ok());
      EXPECT_FALSE(loaded->salvaged);
      EXPECT_EQ(loaded->summary.NumPatterns(), 4u);
    }
  }

  // Rename failure: same story.
  env.Reset();
  env.config().fail_rename = true;
  EXPECT_FALSE(SaveSummaryV2(fx.summary, &fx.dict, &env, path).ok());
  EXPECT_FALSE(env.FileExists(path + ".tmp"));
  EXPECT_TRUE(LoadSummary(Env::Default(), path).ok());

  // Sync failure too.
  env.Reset();
  env.config().fail_sync = true;
  EXPECT_FALSE(SaveSummaryV2(fx.summary, &fx.dict, &env, path).ok());
  EXPECT_TRUE(LoadSummary(Env::Default(), path).ok());
}

TEST(SummaryV2Test, LoadSurvivesShortReadsAndFailsCleanlyOnEio) {
  Fixture fx;
  FaultInjectingEnv env(Env::Default());
  std::string path = TestPath("fmt_fault_load.tls");
  ASSERT_TRUE(SaveSummaryV2(fx.summary, &fx.dict, &env, path).ok());

  env.config().short_read_cap = 5;
  Result<LoadedSummary> loaded = LoadSummary(&env, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->summary.NumPatterns(), 4u);

  env.Reset();
  env.config().fail_read = true;
  Result<LoadedSummary> failed = LoadSummary(&env, path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
}

TEST(SummaryV1CompatTest, V1TextStillLoads) {
  Fixture fx;
  std::string path = TestPath("fmt_v1.txt");
  ASSERT_TRUE(fx.summary.SaveToFileV1(path).ok());

  // Through the plain API...
  Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumPatterns(), 4u);
  EXPECT_EQ(loaded->complete_through_level(), 3);

  // ...and through LoadSummary, which reports the version and no dict.
  Result<LoadedSummary> rich = LoadSummary(Env::Default(), path);
  ASSERT_TRUE(rich.ok());
  EXPECT_EQ(rich->format_version, 1);
  EXPECT_FALSE(rich->dict.has_value());

  Result<VerifyReport> report = VerifySummaryFile(Env::Default(), path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->format_version, 1);
  EXPECT_TRUE(report->intact);
}

TEST(SummaryV1CompatTest, SeedWrittenFileLoads) {
  // Byte-for-byte what the seed code's SaveToFile produced.
  std::string path = TestPath("fmt_v1_seed.txt");
  {
    std::ofstream out(path);
    out << "TLSUMMARY v1\n3 2\n3\n10 0\n8 1\n6 0(1)\n";
  }
  Result<LoadedSummary> loaded = LoadSummary(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->summary.NumPatterns(), 3u);
  EXPECT_EQ(loaded->summary.complete_through_level(), 2);
  EXPECT_EQ(*loaded->summary.LookupCode("0(1)"), 6u);
}

TEST(SummaryV1CompatTest, HardenedAgainstHostileHeaders) {
  auto write_and_load = [](const std::string& text) {
    std::string path = TestPath("fmt_v1_hostile.txt");
    std::ofstream(path) << text;
    return LatticeSummary::LoadFromFile(path);
  };
  // Trailing garbage after the declared pattern count.
  Result<LatticeSummary> r1 =
      write_and_load("TLSUMMARY v1\n3 2\n1\n10 0\nGARBAGE\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  // complete_through_level beyond max_level.
  Result<LatticeSummary> r2 = write_and_load("TLSUMMARY v1\n3 9\n0\n");
  ASSERT_FALSE(r2.ok());
  // Pattern count far beyond what the file could hold.
  Result<LatticeSummary> r3 =
      write_and_load("TLSUMMARY v1\n3 2\n99999999999\n10 0\n");
  ASSERT_FALSE(r3.ok());
  // Absurd max_level must not allocate/loop unboundedly.
  Result<LatticeSummary> r4 =
      write_and_load("TLSUMMARY v1\n2000000000 2\n0\n");
  ASSERT_FALSE(r4.ok());
  // Negative completeness.
  Result<LatticeSummary> r5 = write_and_load("TLSUMMARY v1\n3 -1\n0\n");
  ASSERT_FALSE(r5.ok());
}

TEST(DictCodecTest, EscapedSidecarRoundTripsHostileNames) {
  LabelDict dict;
  dict.Intern("plain");
  dict.Intern("");  // the empty label that shifted every id in the seed
  dict.Intern("has\nnewline");
  dict.Intern("has%percent");
  dict.Intern("has\rreturn");
  dict.Intern("after");  // ids past the hostile ones must not shift

  std::string path = TestPath("dict_roundtrip.dict");
  ASSERT_TRUE(SaveLabelDict(dict, Env::Default(), path).ok());
  Result<LabelDict> loaded = LoadLabelDict(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    EXPECT_EQ(loaded->Name(static_cast<LabelId>(i)),
              dict.Name(static_cast<LabelId>(i)))
        << "LabelId " << i << " shifted";
  }
}

TEST(DictCodecTest, LegacySidecarKeepsEmptyLines) {
  // A seed-written sidecar with an empty label: the seed's LoadDict
  // skipped the empty line, shifting "c" from id 2 to id 1 and silently
  // corrupting every estimate. The fixed loader must preserve positions.
  std::string path = TestPath("dict_legacy.dict");
  {
    std::ofstream out(path);
    out << "a\n\nc\n";
  }
  Result<LabelDict> loaded = LoadLabelDict(Env::Default(), path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->Name(0), "a");
  EXPECT_EQ(loaded->Name(1), "");
  EXPECT_EQ(loaded->Name(2), "c");
}

TEST(DictCodecTest, DuplicateNamesRejected) {
  std::string path = TestPath("dict_dup.dict");
  {
    std::ofstream out(path);
    out << "a\nb\na\n";
  }
  Result<LabelDict> loaded = LoadLabelDict(Env::Default(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(DictCodecTest, BinaryBlockRejectsCorruptLengths) {
  LabelDict dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  std::string block;
  EncodeLabelDict(dict, &block);

  LabelDict decoded;
  ASSERT_TRUE(DecodeLabelDict(block, &decoded).ok());
  EXPECT_EQ(decoded.size(), 2u);

  // Truncated block.
  LabelDict d2;
  EXPECT_FALSE(
      DecodeLabelDict(std::string_view(block).substr(0, block.size() - 2),
                      &d2)
          .ok());
  // Length field pointing past the end.
  std::string bad = block;
  bad[4] = '\xff';
  LabelDict d3;
  EXPECT_FALSE(DecodeLabelDict(bad, &d3).ok());
}

}  // namespace
}  // namespace treelattice
