#include <string>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/random_tree.h"
#include "mining/freqt_builder.h"
#include "mining/lattice_builder.h"
#include "twig/automorphisms.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(AutomorphismTest, KnownValues) {
  LabelDict dict;
  EXPECT_EQ(CountAutomorphisms(MustParse("a", &dict)), 1u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b)", &dict)), 1u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b,c)", &dict)), 1u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b,b)", &dict)), 2u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b,b,b)", &dict)), 6u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b(c),b)", &dict)), 1u);
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b(c),b(c))", &dict)), 2u);
  // Nested: two identical b(c,c) children -> 2! * (2! per child) = 8.
  EXPECT_EQ(CountAutomorphisms(MustParse("a(b(c,c),b(c,c))", &dict)), 8u);
  Twig empty;
  EXPECT_EQ(CountAutomorphisms(empty), 1u);
}

TEST(AutomorphismTest, OrderedVariants) {
  LabelDict dict;
  EXPECT_EQ(CountOrderedVariants(MustParse("a", &dict)), 1u);
  EXPECT_EQ(CountOrderedVariants(MustParse("a(b,c)", &dict)), 2u);
  EXPECT_EQ(CountOrderedVariants(MustParse("a(b,b)", &dict)), 1u);
  EXPECT_EQ(CountOrderedVariants(MustParse("a(b,b,c)", &dict)), 3u);
  // variants * automorphisms == product of fanout factorials.
  Twig t = MustParse("a(b(c,c),b(c,d))", &dict);
  EXPECT_EQ(CountOrderedVariants(t) * CountAutomorphisms(t),
            2u * 2u * 2u);  // root 2!, each b 2!
}

TEST(AutomorphismTest, CollectSubtreeNodes) {
  LabelDict dict;
  Twig t = MustParse("a(b(c),d)", &dict);
  auto nodes = CollectSubtreeNodes(t, 1);  // subtree at b
  EXPECT_EQ(nodes.size(), 2u);
  auto all = CollectSubtreeNodes(t, t.root());
  EXPECT_EQ(all.size(), 4u);
}

void ExpectSummariesEqual(const LatticeSummary& a, const LatticeSummary& b) {
  ASSERT_EQ(a.NumPatterns(), b.NumPatterns());
  for (int level = 1; level <= a.max_level(); ++level) {
    ASSERT_EQ(a.NumPatterns(level), b.NumPatterns(level)) << level;
    for (const std::string& code : a.PatternsAtLevel(level)) {
      auto other = b.LookupCode(code);
      ASSERT_TRUE(other.has_value()) << code;
      EXPECT_EQ(*a.LookupCode(code), *other) << code;
    }
  }
}

TEST(FreqtBuilderTest, TinyDocumentMatchesDirectBuilder) {
  auto doc = ParseXmlString("<a><b><c/></b><b/><b><c/><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  LatticeBuildOptions options;
  options.max_level = 4;
  auto direct = BuildLattice(*doc, options);
  FreqtBuildStats stats;
  auto freqt = BuildLatticeFreqt(*doc, options, &stats);
  ASSERT_TRUE(direct.ok() && freqt.ok()) << freqt.status().ToString();
  ExpectSummariesEqual(*direct, *freqt);
  EXPECT_GT(stats.ordered_patterns, direct->NumPatterns());
  EXPECT_EQ(freqt->complete_through_level(), 4);
}

TEST(FreqtBuilderTest, EmptyAndDegenerate) {
  Document empty;
  auto summary = BuildLatticeFreqt(empty, LatticeBuildOptions());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->NumPatterns(), 0u);

  Document single;
  single.AddNode("x", kInvalidNode);
  summary = BuildLatticeFreqt(single, LatticeBuildOptions());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->NumPatterns(), 1u);

  LatticeBuildOptions bad;
  bad.max_level = 1;
  EXPECT_FALSE(BuildLatticeFreqt(single, bad).ok());
}

class FreqtEquivalence : public testing::TestWithParam<int> {};

TEST_P(FreqtEquivalence, MatchesDirectBuilderOnRandomTrees) {
  RandomTreeOptions tree;
  tree.seed = static_cast<uint64_t>(GetParam()) * 131 + 17;
  tree.num_nodes = 150;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  LatticeBuildOptions options;
  options.max_level = 4;
  auto direct = BuildLattice(doc, options);
  auto freqt = BuildLatticeFreqt(doc, options);
  ASSERT_TRUE(direct.ok() && freqt.ok());
  ExpectSummariesEqual(*direct, *freqt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreqtEquivalence, testing::Range(0, 15));

TEST(FreqtBuilderTest, MatchesDirectBuilderOnDatasetSample) {
  DatasetOptions generate;
  generate.scale = 60;
  Document doc = GeneratePsd(generate);
  LatticeBuildOptions options;
  options.max_level = 4;
  auto direct = BuildLattice(doc, options);
  auto freqt = BuildLatticeFreqt(doc, options);
  ASSERT_TRUE(direct.ok() && freqt.ok());
  ExpectSummariesEqual(*direct, *freqt);
}

}  // namespace
}  // namespace treelattice
