#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "twig/twig.h"
#include "util/hash.h"
#include "util/rng.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(TwigTest, BuildBasics) {
  Twig t;
  int root = t.AddNode(0, -1);
  int b = t.AddNode(1, root);
  int c = t.AddNode(2, root);
  t.AddNode(3, b);
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.parent(b), root);
  EXPECT_TRUE(t.IsLeaf(c));
  EXPECT_FALSE(t.IsLeaf(b));
}

TEST(TwigTest, ParseAndToString) {
  LabelDict dict;
  Twig t = MustParse("a(b,c(d,e))", &dict);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.ToString(dict), "a(b,c(d,e))");
}

TEST(TwigTest, ParseSingleNode) {
  LabelDict dict;
  Twig t = MustParse("root", &dict);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.ToString(dict), "root");
}

TEST(TwigTest, ParseWithWhitespace) {
  LabelDict dict;
  Twig t = MustParse("  a ( b , c ) ", &dict);
  EXPECT_EQ(t.size(), 3);
}

TEST(TwigTest, ParseErrors) {
  LabelDict dict;
  EXPECT_FALSE(Twig::Parse("", &dict).ok());
  EXPECT_FALSE(Twig::Parse("a(b", &dict).ok());
  EXPECT_FALSE(Twig::Parse("a(b))", &dict).ok());
  EXPECT_FALSE(Twig::Parse("a(,b)", &dict).ok());
  EXPECT_FALSE(Twig::Parse("(a)", &dict).ok());
  EXPECT_FALSE(Twig::Parse("a b", &dict).ok());
  EXPECT_FALSE(Twig::Parse("a(b)c", &dict).ok());
}

TEST(TwigTest, ParseNullDictRejected) {
  EXPECT_FALSE(Twig::Parse("a", nullptr).ok());
}

TEST(TwigTest, CanonicalCodeInvariantUnderSiblingOrder) {
  LabelDict dict;
  Twig t1 = MustParse("a(b,c(d,e))", &dict);
  Twig t2 = MustParse("a(c(e,d),b)", &dict);
  EXPECT_EQ(t1.CanonicalCode(), t2.CanonicalCode());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.CanonicalHash(), t2.CanonicalHash());
}

TEST(TwigTest, EqualityIsOrderIndependentAndAllocationFree) {
  // Regression for the old operator== that stringified both sides per
  // comparison: structural equality must hold regardless of the order
  // nodes were added (sibling insertion order is not structure), across
  // copies, and for twigs whose canonical caches are in different states
  // (one warm, one cold).
  LabelDict dict;
  Twig ab_first = MustParse("a(b,c)", &dict);
  Twig ac_first = MustParse("a(c,b)", &dict);
  EXPECT_TRUE(ab_first == ac_first);
  EXPECT_FALSE(ab_first != ac_first);

  // Warm one side's cache only; equality must not depend on which side
  // (or whether either) has canonicalized before.
  Twig cold = MustParse("a(b,c)", &dict);
  Twig warm = MustParse("a(c,b)", &dict);
  (void)warm.CanonicalCode();
  EXPECT_TRUE(cold == warm);
  EXPECT_TRUE(warm == cold);

  EXPECT_FALSE(MustParse("a(b,c)", &dict) == MustParse("a(b,d)", &dict));
  EXPECT_FALSE(MustParse("a(b,c)", &dict) == MustParse("a(b)", &dict));
  EXPECT_FALSE(MustParse("a(b,c)", &dict) == MustParse("b(b,c)", &dict));
  EXPECT_TRUE(Twig() == Twig());
  EXPECT_FALSE(Twig() == MustParse("a", &dict));
}

TEST(TwigTest, CachedCanonicalCodeTracksMutation) {
  // CanonicalCode() is computed once and cached; every mutation path must
  // invalidate it so the cache never serves the pre-mutation code.
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  const std::string before = t.CanonicalCode();
  EXPECT_EQ(before, t.ComputeCanonicalCode());
  EXPECT_EQ(t.CanonicalHash(), Twig(t).CanonicalHash());

  t.AddNode(dict.Intern("d"), t.root());
  EXPECT_EQ(t.CanonicalCode(), t.ComputeCanonicalCode());
  EXPECT_NE(t.CanonicalCode(), before);

  Twig removed;
  ASSERT_TRUE(t.RemoveNodeInto(t.size() - 1, &removed).ok());
  EXPECT_EQ(removed.CanonicalCode(), removed.ComputeCanonicalCode());
  EXPECT_EQ(removed.CanonicalCode(), before);

  // Copy/move transfer or rebuild the cache but never share a stale one.
  Twig copy = t;
  EXPECT_EQ(copy.CanonicalCode(), t.CanonicalCode());
  copy.AddNode(dict.Intern("e"), copy.root());
  EXPECT_NE(copy.CanonicalCode(), t.CanonicalCode());
  Twig moved = std::move(copy);
  EXPECT_EQ(moved.CanonicalCode(), moved.ComputeCanonicalCode());

  t.Clear();
  EXPECT_EQ(t.size(), 0);
  int root = t.AddNode(dict.Intern("z"), -1);
  (void)root;
  EXPECT_EQ(t.CanonicalCode(), t.ComputeCanonicalCode());
  EXPECT_EQ(t.CanonicalHash(), HashBytes(t.CanonicalCode()));
}

TEST(TwigTest, CanonicalCodeDistinguishesStructure) {
  LabelDict dict;
  Twig flat = MustParse("a(b,c)", &dict);
  Twig nested = MustParse("a(b(c))", &dict);
  EXPECT_NE(flat.CanonicalCode(), nested.CanonicalCode());
}

TEST(TwigTest, CanonicalCodeDistinguishesDuplicateSiblings) {
  LabelDict dict;
  Twig two = MustParse("a(b,b)", &dict);
  Twig one = MustParse("a(b)", &dict);
  EXPECT_NE(two.CanonicalCode(), one.CanonicalCode());
}

TEST(TwigTest, FromCanonicalCodeRoundTrip) {
  LabelDict dict;
  Twig t = MustParse("a(b,c(d,e),b)", &dict);
  std::string code = t.CanonicalCode();
  Result<Twig> back = Twig::FromCanonicalCode(code);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->CanonicalCode(), code);
  EXPECT_EQ(back->size(), t.size());
}

TEST(TwigTest, FromCanonicalCodeRejectsGarbage) {
  EXPECT_FALSE(Twig::FromCanonicalCode("").ok());
  EXPECT_FALSE(Twig::FromCanonicalCode("abc").ok());
  EXPECT_FALSE(Twig::FromCanonicalCode("1(2").ok());
}

TEST(TwigTest, CanonicalizedIsStable) {
  LabelDict dict;
  Twig t = MustParse("a(c(e,d),b)", &dict);
  Twig canon = t.Canonicalized();
  EXPECT_EQ(canon.CanonicalCode(), t.CanonicalCode());
  // Canonicalizing twice is a fixpoint on node order.
  Twig canon2 = canon.Canonicalized();
  for (int i = 0; i < canon.size(); ++i) {
    EXPECT_EQ(canon.label(i), canon2.label(i));
    EXPECT_EQ(canon.parent(i), canon2.parent(i));
  }
}

TEST(TwigTest, PreorderVisitsAllNodesRootFirst) {
  LabelDict dict;
  Twig t = MustParse("a(b(c),d)", &dict);
  std::vector<int> order = t.PreorderNodes();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], t.root());
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
  // Every node appears after its parent.
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = int(i);
  for (int n = 0; n < t.size(); ++n) {
    if (t.parent(n) != -1) {
      EXPECT_LT(position[t.parent(n)], position[n]);
    }
  }
}

TEST(TwigTest, RemovableNodes) {
  LabelDict dict;
  // Path: root has degree 1 so it is removable, as is the leaf.
  Twig path = MustParse("a(b(c))", &dict);
  std::vector<int> removable = path.RemovableNodes();
  EXPECT_EQ(removable.size(), 2u);

  // Star: only the two leaves.
  Twig star = MustParse("a(b,c)", &dict);
  removable = star.RemovableNodes();
  ASSERT_EQ(removable.size(), 2u);
  EXPECT_TRUE(star.IsLeaf(removable[0]));
  EXPECT_TRUE(star.IsLeaf(removable[1]));

  // Single node: nothing to remove.
  Twig single = MustParse("a", &dict);
  EXPECT_TRUE(single.RemovableNodes().empty());
}

TEST(TwigTest, RemoveLeaf) {
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  int c_node = 2;
  std::vector<int> map;
  Result<Twig> removed = t.RemoveNode(c_node, &map);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 2);
  EXPECT_EQ(removed->ToString(dict), "a(b)");
  EXPECT_EQ(map[c_node], -1);
  EXPECT_EQ(map[0], 0);
}

TEST(TwigTest, RemoveDegreeOneRootPromotesChild) {
  LabelDict dict;
  Twig t = MustParse("a(b(c,d))", &dict);
  Result<Twig> removed = t.RemoveNode(t.root());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->ToString(dict), "b(c,d)");
}

TEST(TwigTest, RemoveInteriorRejected) {
  LabelDict dict;
  Twig t = MustParse("a(b(c),d)", &dict);
  EXPECT_FALSE(t.RemoveNode(1).ok());   // b is interior
  EXPECT_FALSE(t.RemoveNode(0).ok());   // root with two children
  EXPECT_FALSE(t.RemoveNode(99).ok());  // out of range
}

TEST(TwigTest, InducedSubtree) {
  LabelDict dict;
  Twig t = MustParse("a(b(c),d)", &dict);
  Result<Twig> sub = t.InducedSubtree({0, 1, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->ToString(dict), "a(b,d)");
}

TEST(TwigTest, InducedSubtreeRejectsDisconnected) {
  LabelDict dict;
  Twig t = MustParse("a(b(c),d)", &dict);
  EXPECT_FALSE(t.InducedSubtree({2, 3}).ok());  // c and d not connected
  EXPECT_FALSE(t.InducedSubtree({}).ok());
  EXPECT_FALSE(t.InducedSubtree({42}).ok());
}

TEST(TwigTest, DepthAndIsPath) {
  LabelDict dict;
  Twig path = MustParse("a(b(c(d)))", &dict);
  EXPECT_TRUE(path.IsPath());
  EXPECT_EQ(path.Depth(0), 0);
  EXPECT_EQ(path.Depth(3), 3);
  Twig branch = MustParse("a(b,c)", &dict);
  EXPECT_FALSE(branch.IsPath());
}

// Property sweep: canonical code is invariant under random sibling
// permutations of randomly built twigs.
class TwigCanonicalProperty : public testing::TestWithParam<int> {};

TEST_P(TwigCanonicalProperty, InvariantUnderShuffle) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  // Build a random twig with up to 10 nodes and 4 labels.
  const int n = 2 + static_cast<int>(rng.Uniform(9));
  std::vector<int> parents(n, -1);
  Twig original;
  original.AddNode(static_cast<LabelId>(rng.Uniform(4)), -1);
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
    original.AddNode(static_cast<LabelId>(rng.Uniform(4)), parent);
    parents[i] = parent;
  }
  // Rebuild with children inserted in a different (reversed per node)
  // order: insert nodes by descending index groups. Equivalent tree.
  Twig shuffled;
  std::vector<int> new_index(static_cast<size_t>(n), -1);
  // Insert in BFS order with reversed child lists.
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int i = 1; i < n; ++i) children[parents[i]].push_back(i);
  std::vector<int> queue = {0};
  new_index[0] = shuffled.AddNode(original.label(0), -1);
  for (size_t head = 0; head < queue.size(); ++head) {
    int node = queue[head];
    auto kids = children[node];
    std::reverse(kids.begin(), kids.end());
    for (int k : kids) {
      new_index[k] = shuffled.AddNode(original.label(k), new_index[node]);
      queue.push_back(k);
    }
  }
  EXPECT_EQ(original.CanonicalCode(), shuffled.CanonicalCode())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigCanonicalProperty, testing::Range(0, 50));

// Reference unordered-tree isomorphism by recursive multiset comparison,
// used to validate that canonical codes are a *complete* invariant: equal
// codes <=> isomorphic twigs.
bool Isomorphic(const Twig& a, int ra, const Twig& b, int rb) {
  if (a.label(ra) != b.label(rb)) return false;
  const auto& ka = a.children(ra);
  const auto& kb = b.children(rb);
  if (ka.size() != kb.size()) return false;
  std::vector<bool> used(kb.size(), false);
  // Backtracking match of child subtrees (twigs are tiny).
  std::function<bool(size_t)> match = [&](size_t i) {
    if (i == ka.size()) return true;
    for (size_t j = 0; j < kb.size(); ++j) {
      if (used[j]) continue;
      if (Isomorphic(a, ka[i], b, kb[j])) {
        used[j] = true;
        if (match(i + 1)) return true;
        used[j] = false;
      }
    }
    return false;
  };
  return match(0);
}

class TwigCodeCompleteness : public testing::TestWithParam<int> {};

TEST_P(TwigCodeCompleteness, EqualCodesIffIsomorphic) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  // Two random twigs over a tiny alphabet so collisions are plausible.
  auto random_twig = [&]() {
    Twig t;
    int n = 1 + static_cast<int>(rng.Uniform(5));
    t.AddNode(static_cast<LabelId>(rng.Uniform(2)), -1);
    for (int i = 1; i < n; ++i) {
      t.AddNode(static_cast<LabelId>(rng.Uniform(2)),
                static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))));
    }
    return t;
  };
  for (int trial = 0; trial < 30; ++trial) {
    Twig a = random_twig();
    Twig b = random_twig();
    bool same_code = a.CanonicalCode() == b.CanonicalCode();
    bool isomorphic = a.size() == b.size() &&
                      Isomorphic(a, a.root(), b, b.root());
    EXPECT_EQ(same_code, isomorphic)
        << a.ToDebugString() << " vs " << b.ToDebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwigCodeCompleteness, testing::Range(0, 30));

// Hostile canonical codes (fuzz regressions): nesting past the parser's
// depth cap and label ids past int32 must fail with a ParseError, not a
// stack overflow or signed-overflow UB.
TEST(TwigParseTest, RejectsHostileCanonicalCodes) {
  {
    // "0(0(0(...": 6000 levels, past the 4096 cap.
    std::string deep;
    for (int i = 0; i < 6000; ++i) deep += "0(";
    deep += "0";
    deep.append(6000, ')');
    auto twig = Twig::FromCanonicalCode(deep);
    ASSERT_FALSE(twig.ok());
    EXPECT_NE(twig.status().message().find("nesting deeper"),
              std::string::npos)
        << twig.status().message();
  }
  for (const char* code : {"99999999999999999999(1)", "2147483648"}) {
    auto twig = Twig::FromCanonicalCode(code);
    ASSERT_FALSE(twig.ok()) << code;
    EXPECT_NE(twig.status().message().find("out of range"),
              std::string::npos)
        << twig.status().message();
  }
  // The largest representable id is still accepted.
  auto max_id = Twig::FromCanonicalCode("2147483647");
  ASSERT_TRUE(max_id.ok()) << max_id.status().ToString();
  EXPECT_EQ(max_id->label(max_id->root()), 2147483647);
}

// The nesting cap is exact: a twig at the cap parses, one past it fails.
TEST(TwigParseTest, NestingDepthBoundary) {
  auto chain = [](int depth) {
    std::string code;
    for (int i = 0; i < depth; ++i) code += "0(";
    code += "0";
    code.append(static_cast<size_t>(depth), ')');
    return code;
  };
  auto at_cap = Twig::FromCanonicalCode(chain(4096));
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap->size(), 4097);
  EXPECT_FALSE(Twig::FromCanonicalCode(chain(4097)).ok());
}

}  // namespace
}  // namespace treelattice
