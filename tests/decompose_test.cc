#include <set>
#include <string>

#include <gtest/gtest.h>

#include "twig/decompose.h"
#include "util/rng.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Builds a random twig with `n` nodes over `labels` labels.
Twig RandomTwig(Rng& rng, int n, int labels) {
  Twig t;
  t.AddNode(static_cast<LabelId>(rng.Uniform(labels)), -1);
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
    t.AddNode(static_cast<LabelId>(rng.Uniform(labels)), parent);
  }
  return t;
}

TEST(SplitByLeafPairTest, PathSplit) {
  LabelDict dict;
  Twig t = MustParse("a(b(c))", &dict);
  // Removable: root a (degree 1) and leaf c.
  auto pairs = ValidLeafPairs(t);
  ASSERT_EQ(pairs.size(), 1u);
  Result<RecursiveSplit> split =
      SplitByLeafPair(t, pairs[0].first, pairs[0].second);
  ASSERT_TRUE(split.ok());
  // T1 keeps the first node of the pair (a), T2 keeps c; overlap is b.
  std::set<std::string> got = {split->t1.ToString(dict),
                               split->t2.ToString(dict)};
  EXPECT_TRUE(got.count("a(b)"));
  EXPECT_TRUE(got.count("b(c)"));
  EXPECT_EQ(split->overlap.ToString(dict), "b");
}

TEST(SplitByLeafPairTest, StarSplit) {
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  auto pairs = ValidLeafPairs(t);
  ASSERT_EQ(pairs.size(), 1u);
  Result<RecursiveSplit> split =
      SplitByLeafPair(t, pairs[0].first, pairs[0].second);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->overlap.ToString(dict), "a");
  EXPECT_EQ(split->t1.size(), 2);
  EXPECT_EQ(split->t2.size(), 2);
}

TEST(SplitByLeafPairTest, RejectsBadInputs) {
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  EXPECT_FALSE(SplitByLeafPair(t, 1, 1).ok());  // u == v
  EXPECT_FALSE(SplitByLeafPair(t, 0, 1).ok());  // root not removable here
  Twig tiny = MustParse("a(b)", &dict);
  EXPECT_FALSE(SplitByLeafPair(tiny, 0, 1).ok());  // size < 3
}

TEST(ValidLeafPairsTest, NonEmptyForAllTwigsOfSize3Plus) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(8));
    Twig t = RandomTwig(rng, n, 5);
    auto pairs = ValidLeafPairs(t);
    EXPECT_FALSE(pairs.empty()) << t.ToDebugString();
  }
}

TEST(ValidLeafPairsTest, SplitSizesAreConsistent) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(8));
    Twig t = RandomTwig(rng, n, 4);
    for (auto [u, v] : ValidLeafPairs(t)) {
      Result<RecursiveSplit> split = SplitByLeafPair(t, u, v);
      ASSERT_TRUE(split.ok());
      EXPECT_EQ(split->t1.size(), n - 1);
      EXPECT_EQ(split->t2.size(), n - 1);
      EXPECT_EQ(split->overlap.size(), n - 2);
    }
  }
}

// ---------------------------------------------------------------------------
// Fixed-size cover (Lemma 2) properties.

TEST(FixedSizeCoverTest, RejectsBadArguments) {
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  EXPECT_FALSE(FixedSizeCover(t, 1).ok());
  EXPECT_FALSE(FixedSizeCover(t, 4).ok());  // k > size
}

TEST(FixedSizeCoverTest, ExactSizeYieldsSingleStep) {
  LabelDict dict;
  Twig t = MustParse("a(b,c)", &dict);
  auto steps = FixedSizeCover(t, 3);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 1u);
  EXPECT_EQ((*steps)[0].subtree.CanonicalCode(), t.CanonicalCode());
}

TEST(FixedSizeCoverTest, PaperExampleStepCount) {
  LabelDict dict;
  // Figure 3(b): 7-node twig covered by 4-subtrees -> 4 steps.
  Twig t = MustParse("a(b(c,d(f(e,g))))", &dict);
  ASSERT_EQ(t.size(), 7);
  auto steps = FixedSizeCover(t, 4);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps->size(), 4u);  // n - k + 1
}

class FixedSizeCoverProperty : public testing::TestWithParam<int> {};

TEST_P(FixedSizeCoverProperty, Lemma2Invariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  int n = 4 + static_cast<int>(rng.Uniform(7));   // 4..10 nodes
  int k = 2 + static_cast<int>(rng.Uniform(3));   // 2..4
  if (k > n) k = n;
  Twig t = RandomTwig(rng, n, 4);

  auto result = FixedSizeCover(t, k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& steps = *result;

  // Lemma 2: exactly n - k + 1 subtrees.
  EXPECT_EQ(steps.size(), static_cast<size_t>(n - k + 1));
  // First step has no overlap; all subtrees have k nodes; all overlaps have
  // k - 1 nodes and are sub-twigs of their step's subtree.
  EXPECT_TRUE(steps[0].overlap.empty());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].subtree.size(), k);
    if (i > 0) {
      EXPECT_EQ(steps[i].overlap.size(), k - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedSizeCoverProperty, testing::Range(0, 60));

}  // namespace
}  // namespace treelattice
