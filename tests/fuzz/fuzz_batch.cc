// Fuzz harness for the serve-layer batch envelope (DESIGN.md §14). The
// input's first byte picks the per-line query cap, the rest is the
// request line. ParseBatchRequestLine must never crash on arbitrary
// bytes; when it accepts, the invariants checked are:
//
//   * the line was detected as a batch line (IsBatchRequestLine)
//   * 1 <= items <= max_items (when a cap is set), every query non-empty
//   * the response round-trip: a ServeBatchResponse echoing the parsed
//     items renders as ONE newline-free JSON array line that re-parses
//     with exactly one element per query — fuzzer-chosen query bytes
//     (quotes, backslashes, control bytes, UTF-8 fragments) must survive
//     the JSON escaping round trip

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/server.h"
#include "util/json.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte steers the configuration; the rest is the request line.
  const uint8_t knob = data[0];
  const size_t max_items = knob & 0x0F;  // 0 = uncapped, else 1..15
  const std::string_view line(reinterpret_cast<const char*>(data + 1),
                              size - 1);

  treelattice::Result<treelattice::serve::ServeBatch> batch =
      treelattice::serve::ParseBatchRequestLine(line, max_items);
  if (!batch.ok()) return 0;

  // Anything that parsed as a batch must have been detected as one.
  if (!treelattice::serve::IsBatchRequestLine(line)) __builtin_trap();
  if (batch->items.empty()) __builtin_trap();
  if (max_items > 0 && batch->items.size() > max_items) __builtin_trap();

  treelattice::serve::ServeBatchResponse response;
  response.items.reserve(batch->items.size());
  for (const treelattice::serve::ServeRequest& item : batch->items) {
    if (item.query.empty()) __builtin_trap();
    treelattice::serve::ServeResponse out;
    out.id = item.id;
    out.query = item.query;
    out.ok = (knob & 0x10) != 0;
    if (out.ok) {
      out.estimate = static_cast<double>(item.max_work_steps);
      out.rung = "primary";
    } else {
      out.error_code = "InvalidArgument";
      out.error_message = item.query;  // error text is escaped too
    }
    response.items.push_back(std::move(out));
  }

  const std::string wire = response.ToJsonLine();
  if (wire.find('\n') != std::string::npos) __builtin_trap();
  treelattice::Result<treelattice::JsonValue> parsed =
      treelattice::ParseJson(wire);
  if (!parsed.ok()) __builtin_trap();
  if (parsed->array.size() != batch->items.size()) __builtin_trap();
  return 0;
}
