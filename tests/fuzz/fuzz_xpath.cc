// Fuzz harness for the two query front-ends: the XPath-subset compiler
// (xpath/xpath.h) and the twig text parser (Twig::Parse), both of which
// consume untrusted query strings from the CLI and, later, the service
// API. Accepted queries are round-tripped through the canonical code to
// catch corruption that a clean parse would otherwise hide.

#include <string>
#include <string_view>

#include "fuzz_target.h"
#include "twig/twig.h"
#include "xml/label_dict.h"
#include "xpath/xpath.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);

  {
    treelattice::LabelDict dict;
    treelattice::Result<treelattice::Twig> twig =
        treelattice::CompileXPath(text, &dict);
    if (twig.ok()) {
      // Rendering an accepted query must not crash (predicate depth and
      // twig size are bounded by the compiler's own caps).
      (void)treelattice::TwigToXPath(*twig, dict);
    }
  }

  {
    treelattice::LabelDict dict;
    treelattice::Result<treelattice::Twig> twig =
        treelattice::Twig::Parse(text, &dict);
    if (twig.ok()) {
      std::string code = twig->CanonicalCode();
      treelattice::Result<treelattice::Twig> reparsed =
          treelattice::Twig::FromCanonicalCode(code);
      // The canonical code of an accepted twig must itself parse back to
      // a twig with the same canonical code.
      if (!reparsed.ok()) __builtin_trap();
      if (reparsed->CanonicalCode() != code) __builtin_trap();
    }
  }
  return 0;
}
