#ifndef TREELATTICE_TESTS_FUZZ_FUZZ_TARGET_H_
#define TREELATTICE_TESTS_FUZZ_FUZZ_TARGET_H_

#include <cstddef>
#include <cstdint>

/// The libFuzzer entry point each fuzz_<target>.cc defines. Built two
/// ways (tests/fuzz/CMakeLists.txt): against fuzz_smoke_main.cc as a
/// deterministic corpus-replay + mutation binary that runs under plain
/// ctest (label `fuzz`), and — with -DTREELATTICE_FUZZ=ON under Clang —
/// against libFuzzer for real coverage-guided fuzzing.
///
/// Contract: must return 0, must not crash, leak, or trip a sanitizer on
/// ANY input. Parse errors are success (the parser rejected cleanly).
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#endif  // TREELATTICE_TESTS_FUZZ_FUZZ_TARGET_H_
