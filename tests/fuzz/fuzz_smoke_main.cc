// Standalone driver for the fuzz targets when libFuzzer is unavailable
// (the default GCC build). Replays every corpus file once, then runs a
// fixed number of deterministic mutation iterations over corpus-derived
// inputs, so `ctest -L fuzz` gives real (if shallow) parser coverage on
// any toolchain and any crash is reproducible from the printed seed.
//
// Usage:
//   fuzz_<target>_smoke [--corpus=DIR] [--iterations=N] [--seed=S]
//                       [--max-len=N] [FILE...]
//
// FILE arguments are replayed once each (handy for reproducing a crash
// from a saved artifact). With libFuzzer builds (-DTREELATTICE_FUZZ=ON
// under Clang) this file is not linked; libFuzzer provides main().

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fuzz_target.h"

namespace {

struct Options {
  std::vector<std::string> corpus_dirs;
  std::vector<std::string> files;
  uint64_t iterations = 10000;
  uint64_t seed = 0x7265'6c61'7474'6963ULL;  // stable default, any value works
  size_t max_len = 1 << 16;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<std::string> LoadCorpus(const Options& opts) {
  std::vector<std::string> inputs;
  for (const std::string& dir : opts.corpus_dirs) {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      std::fprintf(stderr, "warning: cannot read corpus dir %s: %s\n",
                   dir.c_str(), ec.message().c_str());
      continue;
    }
    std::vector<std::string> paths;
    for (const auto& entry : it) {
      if (entry.is_regular_file(ec)) paths.push_back(entry.path().string());
    }
    // Directory order is filesystem-dependent; sort for determinism.
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
      std::ifstream in(path, std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      if (in.bad()) {
        std::fprintf(stderr, "warning: failed reading %s\n", path.c_str());
        continue;
      }
      inputs.push_back(std::move(bytes));
    }
  }
  for (const std::string& path : opts.files) {
    std::ifstream in(path, std::ios::binary);
    inputs.emplace_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  }
  return inputs;
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

// A libFuzzer-flavored mutation: byte flips, inserts, erases, duplicated
// ranges, and crossover splices from a second corpus input.
std::string Mutate(std::string input, const std::vector<std::string>& corpus,
                   std::mt19937_64* rng, size_t max_len) {
  auto rand_index = [&](size_t n) {
    return static_cast<size_t>((*rng)() % n);
  };
  int rounds = 1 + static_cast<int>((*rng)() % 8);
  for (int r = 0; r < rounds; ++r) {
    switch ((*rng)() % 6) {
      case 0:  // flip/overwrite a byte
        if (!input.empty()) {
          input[rand_index(input.size())] =
              static_cast<char>((*rng)() & 0xff);
        }
        break;
      case 1:  // insert a random byte
        if (input.size() < max_len) {
          input.insert(input.begin() +
                           static_cast<std::ptrdiff_t>(
                               rand_index(input.size() + 1)),
                       static_cast<char>((*rng)() & 0xff));
        }
        break;
      case 2:  // erase a range
        if (!input.empty()) {
          size_t at = rand_index(input.size());
          size_t n = 1 + rand_index(input.size() - at);
          input.erase(at, n);
        }
        break;
      case 3: {  // duplicate a range in place
        if (!input.empty() && input.size() < max_len) {
          size_t at = rand_index(input.size());
          size_t n = 1 + rand_index(input.size() - at);
          input.insert(at, input.substr(at, n));
        }
        break;
      }
      case 4: {  // splice a slice of another corpus input
        if (!corpus.empty()) {
          const std::string& other = corpus[rand_index(corpus.size())];
          if (!other.empty() && input.size() < max_len) {
            size_t at = rand_index(other.size());
            size_t n = 1 + rand_index(other.size() - at);
            input.insert(rand_index(input.size() + 1), other, at, n);
          }
        }
        break;
      }
      default:  // truncate
        if (!input.empty()) input.resize(rand_index(input.size()));
        break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--corpus", &value)) {
      opts.corpus_dirs.emplace_back(value);
    } else if (ParseFlag(argv[i], "--iterations", &value)) {
      opts.iterations = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      opts.seed = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-len", &value)) {
      opts.max_len = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--corpus=DIR] [--iterations=N] [--seed=S] "
                   "[--max-len=N] [FILE...]\n",
                   argv[0]);
      return 2;
    } else {
      opts.files.emplace_back(argv[i]);
    }
  }

  std::vector<std::string> corpus = LoadCorpus(opts);
  for (const std::string& input : corpus) RunOne(input);
  std::printf("replayed %zu corpus inputs\n", corpus.size());

  std::mt19937_64 rng(opts.seed);
  for (uint64_t i = 0; i < opts.iterations; ++i) {
    std::string base;
    if (!corpus.empty() && (rng() % 8) != 0) {
      base = corpus[static_cast<size_t>(rng() % corpus.size())];
    }
    RunOne(Mutate(std::move(base), corpus, &rng, opts.max_len));
  }
  std::printf("ran %llu mutation iterations (seed %llu): OK\n",
              static_cast<unsigned long long>(opts.iterations),
              static_cast<unsigned long long>(opts.seed));
  return 0;
}
