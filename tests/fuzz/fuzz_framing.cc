// Fuzz harness for the TCP transport's NDJSON framer (serve/conn.h). The
// input's first byte picks the frame-size limit and the chunking pattern,
// so mutations explore partial lines, frames split at every offset
// (including mid-UTF-8 — the framer is byte-oriented), embedded NULs,
// CRLF endings, blank lines, and oversized frames in one target. The
// invariants checked on every input:
//
//   * byte conservation: consumed == Σ(line + newline) + dropped + pending
//   * chunking independence: feeding byte-by-byte yields exactly the same
//     event sequence as one big feed
//   * no emitted line contains a newline or exceeds the frame limit
//   * pending never exceeds the frame limit

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz_target.h"
#include "serve/conn.h"

namespace {

using treelattice::serve::NdjsonFramer;

std::vector<NdjsonFramer::Event> RunFramer(std::string_view input,
                                           size_t max_frame, size_t chunk) {
  NdjsonFramer framer(max_frame);
  std::vector<NdjsonFramer::Event> events;
  size_t offset = 0;
  while (offset < input.size()) {
    const size_t step = std::min(chunk, input.size() - offset);
    framer.Feed(input.substr(offset, step), &events);
    offset += step;
  }
  // Conservation: every byte fed is an emitted line byte (plus its
  // newline), a dropped byte, or still pending.
  uint64_t line_bytes = 0;
  for (const NdjsonFramer::Event& event : events) {
    if (event.kind == NdjsonFramer::EventKind::kLine) {
      if (event.line.find('\n') != std::string::npos) __builtin_trap();
      if (event.line.size() > max_frame) __builtin_trap();
      line_bytes += event.line.size() + 1;
    }
  }
  if (framer.pending() > max_frame) __builtin_trap();
  if (framer.consumed() != input.size()) __builtin_trap();
  if (framer.consumed() != line_bytes + framer.dropped() + framer.pending()) {
    __builtin_trap();
  }
  return events;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte steers the configuration; the rest is wire bytes.
  const uint8_t knob = data[0];
  std::string_view input(reinterpret_cast<const char*>(data + 1), size - 1);
  const size_t max_frame = 1 + (knob & 0x3F);          // 1..64 bytes
  const size_t chunk = 1 + ((knob >> 6) * 7);          // 1, 8, 15, 22

  std::vector<NdjsonFramer::Event> chunked =
      RunFramer(input, max_frame, chunk);
  std::vector<NdjsonFramer::Event> whole =
      RunFramer(input, max_frame, input.empty() ? 1 : input.size());

  // Chunking must not change what comes out.
  if (chunked.size() != whole.size()) __builtin_trap();
  for (size_t i = 0; i < chunked.size(); ++i) {
    if (chunked[i].kind != whole[i].kind) __builtin_trap();
    if (chunked[i].line != whole[i].line) __builtin_trap();
  }
  return 0;
}
