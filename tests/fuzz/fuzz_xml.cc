// Fuzz harness for the XML structural parser (xml/parser.h): untrusted
// documents arrive through dataset ingestion and `treelattice build`.
// Exercises both the value-free default and the attribute/value-modeling
// configuration, which drive different node-synthesis paths.

#include <string_view>

#include "fuzz_target.h"
#include "xml/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view xml(reinterpret_cast<const char*>(data), size);

  (void)treelattice::ParseXmlString(xml);

  treelattice::XmlParseOptions options;
  options.model_attributes = true;
  options.model_values = true;
  options.value_buckets = 16;
  treelattice::Result<treelattice::Document> doc =
      treelattice::ParseXmlString(xml, options);
  if (doc.ok()) {
    // A document the parser accepted must satisfy its own invariants.
    treelattice::Status valid = doc->Validate();
    if (!valid.ok()) __builtin_trap();
  }
  return 0;
}
