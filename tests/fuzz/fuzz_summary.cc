// Fuzz harness for the summary loaders: the v1 text parser
// (LatticeSummary::FromV1Text) over raw bytes, and the TLSUMMARY v2
// container (LoadSummary / VerifySummaryFile) via a scratch file, since
// the v2 reader is file-based. Cross-checks the two v2 entry points:
// a file Verify reports intact must Load without salvage.

#include <cstdio>
#include <string>
#include <string_view>

#include <unistd.h>

#include "fuzz_target.h"
#include "io/env.h"
#include "summary/lattice_summary.h"
#include "summary/summary_format.h"

namespace {

// One scratch file per process; iterations overwrite it in place.
const std::string& ScratchPath() {
  static const std::string* path = [] {
    const char* tmp = ::getenv("TMPDIR");
    std::string base = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
    return new std::string(base + "/tl_fuzz_summary." +
                           std::to_string(::getpid()) + ".bin");
  }();
  return *path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  (void)treelattice::LatticeSummary::FromV1Text(bytes, "fuzz-input");

  treelattice::Env* env = treelattice::Env::Default();
  if (!treelattice::WriteFileAtomic(env, ScratchPath(), bytes).ok()) {
    return 0;  // scratch dir unwritable; nothing to test
  }
  treelattice::Result<treelattice::VerifyReport> report =
      treelattice::VerifySummaryFile(env, ScratchPath());
  treelattice::Result<treelattice::LoadedSummary> loaded =
      treelattice::LoadSummary(env, ScratchPath());
  if (report.ok() && report->intact) {
    // Verify and Load must agree on an intact file.
    if (!loaded.ok() || loaded->salvaged) __builtin_trap();
  }
  if (loaded.ok() && loaded->format_version == 2) {
    // Whatever survived (possibly salvaged) must round-trip cleanly.
    const treelattice::LabelDict* dict =
        loaded->dict.has_value() ? &*loaded->dict : nullptr;
    treelattice::Status saved = treelattice::SaveSummaryV2(
        loaded->summary, dict, env, ScratchPath());
    if (!saved.ok()) __builtin_trap();
    treelattice::Result<treelattice::LoadedSummary> reloaded =
        treelattice::LoadSummary(env, ScratchPath());
    if (!reloaded.ok() || reloaded->salvaged) __builtin_trap();
    if (reloaded->summary.NumPatterns() !=
        loaded->summary.NumPatterns()) {
      __builtin_trap();
    }
  }
  return 0;
}
