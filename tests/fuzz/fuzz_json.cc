// Fuzz harness for the util/json.h parser, which validates TreeLattice's
// machine-readable stats output in tests and tools. Accepted documents
// are re-serialized and re-parsed: writer and parser must agree.

#include <string>
#include <string_view>

#include "fuzz_target.h"
#include "util/json.h"

namespace {

void Reserialize(const treelattice::JsonValue& v,
                 treelattice::JsonWriter* w) {
  using Type = treelattice::JsonValue::Type;
  switch (v.type) {
    case Type::kNull:
      w->Null();
      break;
    case Type::kBool:
      w->Bool(v.bool_value);
      break;
    case Type::kNumber:
      w->Double(v.number_value);
      break;
    case Type::kString:
      w->String(v.string_value);
      break;
    case Type::kArray:
      w->BeginArray();
      for (const treelattice::JsonValue& e : v.array) Reserialize(e, w);
      w->EndArray();
      break;
    case Type::kObject:
      w->BeginObject();
      for (const auto& [key, value] : v.object) {
        w->Key(key);
        Reserialize(value, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  treelattice::Result<treelattice::JsonValue> value =
      treelattice::ParseJson(text);
  if (!value.ok()) return 0;
  // The parser caps nesting at its own kMaxDepth, so Reserialize's
  // recursion is bounded. The writer's output must parse back.
  treelattice::JsonWriter writer;
  Reserialize(*value, &writer);
  treelattice::Result<treelattice::JsonValue> reparsed =
      treelattice::ParseJson(writer.str());
  if (!reparsed.ok()) __builtin_trap();
  return 0;
}
