#include <string>

#include <gtest/gtest.h>

#include "datagen/random_tree.h"
#include "mining/incremental.h"
#include "mining/lattice_builder.h"
#include "util/rng.h"
#include "xml/parser.h"

namespace treelattice {
namespace {

Twig MustParse(const std::string& text, LabelDict* dict) {
  Result<Twig> result = Twig::Parse(text, dict);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Asserts the incrementally maintained summary equals a from-scratch
/// rebuild of the (updated) document.
void ExpectSummaryMatchesRebuild(const IncrementalLattice& lattice,
                                 int max_level) {
  LatticeBuildOptions options;
  options.max_level = max_level;
  Result<LatticeSummary> rebuilt = BuildLattice(lattice.doc(), options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(lattice.summary().NumPatterns(), rebuilt->NumPatterns());
  for (int level = 1; level <= max_level; ++level) {
    for (const std::string& code : rebuilt->PatternsAtLevel(level)) {
      auto incremental = lattice.summary().LookupCode(code);
      ASSERT_TRUE(incremental.has_value()) << "missing " << code;
      EXPECT_EQ(*incremental, *rebuilt->LookupCode(code)) << code;
    }
  }
}

TEST(IncrementalLatticeTest, SingleLeafInsert) {
  auto doc = ParseXmlString("<r><a><b/></a><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 3);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();

  // Insert a 'b' under the second 'a' (node id 3 in preorder).
  Twig leaf = MustParse("b", dict);
  Result<size_t> changed = lattice->InsertSubtree(3, leaf);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_GT(*changed, 0u);
  EXPECT_EQ(lattice->doc().NumNodes(), 5u);
  ExpectSummaryMatchesRebuild(*lattice, 3);

  // a(b) count must now be 2.
  EXPECT_EQ(*lattice->summary().Lookup(MustParse("a(b)", dict)), 2u);
}

TEST(IncrementalLatticeTest, NewLabelInsert) {
  auto doc = ParseXmlString("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 3);
  ASSERT_TRUE(lattice.ok());

  // 'z' never occurred before: the pattern set itself must grow.
  Twig subtree = MustParse("z(w)", dict);
  Result<size_t> changed = lattice->InsertSubtree(1, subtree);
  ASSERT_TRUE(changed.ok());
  ExpectSummaryMatchesRebuild(*lattice, 3);
  EXPECT_EQ(*lattice->summary().Lookup(MustParse("a(z(w))", dict)), 1u);
}

TEST(IncrementalLatticeTest, MultiNodeSubtreeInsert) {
  auto doc = ParseXmlString("<r><x><y/></x></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 4);
  ASSERT_TRUE(lattice.ok());

  Twig subtree = MustParse("x(y,z(w))", dict);
  Result<size_t> changed = lattice->InsertSubtree(0, subtree);  // under r
  ASSERT_TRUE(changed.ok());
  ExpectSummaryMatchesRebuild(*lattice, 4);
}

TEST(IncrementalLatticeTest, DuplicateSiblingCountsStayExact) {
  // Inserting another 'b' under a node that already has b's exercises the
  // injective-assignment delta path.
  auto doc = ParseXmlString("<r><a><b/><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 3);
  ASSERT_TRUE(lattice.ok());

  Twig leaf = MustParse("b", dict);
  ASSERT_TRUE(lattice->InsertSubtree(1, leaf).ok());
  ExpectSummaryMatchesRebuild(*lattice, 3);
  // a(b,b): 3 * 2 = 6 ordered injective pairs.
  EXPECT_EQ(*lattice->summary().Lookup(MustParse("a(b,b)", dict)), 6u);
}

TEST(IncrementalLatticeTest, MinimumLatticeLevel) {
  auto doc = ParseXmlString("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 2);
  ASSERT_TRUE(lattice.ok());
  Twig leaf = MustParse("b", dict);
  ASSERT_TRUE(lattice->InsertSubtree(1, leaf).ok());
  ExpectSummaryMatchesRebuild(*lattice, 2);
  EXPECT_EQ(*lattice->summary().Lookup(MustParse("a(b)", dict)), 1u);
}

TEST(IncrementalLatticeTest, RepeatedInsertsAtSameParent) {
  auto doc = ParseXmlString("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 3);
  ASSERT_TRUE(lattice.ok());
  Twig leaf = MustParse("b", dict);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(lattice->InsertSubtree(1, leaf).ok());
  }
  ExpectSummaryMatchesRebuild(*lattice, 3);
  // a(b,b): 4 * 3 injective ordered pairs.
  EXPECT_EQ(*lattice->summary().Lookup(MustParse("a(b,b)", dict)), 12u);
}

TEST(IncrementalLatticeTest, RejectsBadArguments) {
  auto doc = ParseXmlString("<r/>");
  ASSERT_TRUE(doc.ok());
  LabelDict* dict = &doc->mutable_dict();
  auto lattice = IncrementalLattice::Create(*doc, 3);
  ASSERT_TRUE(lattice.ok());
  Twig empty;
  EXPECT_FALSE(lattice->InsertSubtree(0, empty).ok());
  Twig leaf = MustParse("x", dict);
  EXPECT_FALSE(lattice->InsertSubtree(99, leaf).ok());
  EXPECT_FALSE(lattice->InsertSubtree(-1, leaf).ok());
}

// Property: a random sequence of random-subtree insertions into a random
// document keeps the incrementally maintained summary identical to a
// from-scratch rebuild.
class IncrementalProperty : public testing::TestWithParam<int> {};

TEST_P(IncrementalProperty, MatchesRebuildAfterRandomInserts) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomTreeOptions tree;
  tree.seed = seed + 300;
  tree.num_nodes = 50;
  tree.num_labels = 4;
  Document doc = GenerateRandomTree(tree);
  const int max_level = 3;
  auto lattice = IncrementalLattice::Create(doc, max_level);
  ASSERT_TRUE(lattice.ok());

  Rng rng(seed);
  for (int step = 0; step < 5; ++step) {
    // Random subtree of 1-4 nodes with labels from the same alphabet
    // (occasionally a brand-new label).
    Twig subtree;
    int n = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < n; ++i) {
      LabelId label = static_cast<LabelId>(rng.Uniform(5));  // 4 old + new
      int parent = (i == 0) ? -1
                            : static_cast<int>(
                                  rng.Uniform(static_cast<uint64_t>(i)));
      subtree.AddNode(label, parent);
    }
    NodeId target =
        static_cast<NodeId>(rng.Uniform(lattice->doc().NumNodes()));
    Result<size_t> changed = lattice->InsertSubtree(target, subtree);
    ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  }
  ExpectSummaryMatchesRebuild(*lattice, max_level);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty, testing::Range(0, 20));

}  // namespace
}  // namespace treelattice
