// Tests for the value-predicate extension (paper Section 6 future work
// #1): text values bucketed into synthetic "=<bucket>" leaves, value
// predicates in XPath, and end-to-end estimation over value-carrying
// documents.

#include <string>

#include <gtest/gtest.h>

#include "core/recursive_estimator.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "xml/parser.h"
#include "xml/value_buckets.h"
#include "xml/writer.h"
#include "xpath/xpath.h"

namespace treelattice {
namespace {

TEST(ValueBucketTest, DeterministicAndInRange) {
  for (int buckets : {1, 8, 64}) {
    std::string a = ValueBucketLabel("action", buckets);
    EXPECT_EQ(a, ValueBucketLabel("action", buckets));
    EXPECT_TRUE(IsValueBucketLabel(a));
    int bucket = std::stoi(a.substr(1));
    EXPECT_GE(bucket, 0);
    EXPECT_LT(bucket, buckets);
  }
  EXPECT_FALSE(IsValueBucketLabel("action"));
  EXPECT_FALSE(IsValueBucketLabel(""));
}

TEST(ValueBucketTest, DistinctValuesUsuallySeparate) {
  int distinct = 0;
  const char* values[] = {"action", "drama", "comedy", "horror", "scifi"};
  std::set<std::string> buckets;
  for (const char* v : values) buckets.insert(ValueBucketLabel(v, 64));
  distinct = static_cast<int>(buckets.size());
  EXPECT_GE(distinct, 4);  // 5 values into 64 buckets: collisions unlikely
}

TEST(XmlValueParsingTest, ValuesOffByDefault) {
  auto doc = ParseXmlString("<a><b>hello</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), 2u);
}

TEST(XmlValueParsingTest, ValuesBecomeBucketLeaves) {
  XmlParseOptions options;
  options.model_values = true;
  auto doc = ParseXmlString("<a><b>hello</b><b>hello</b><b/></a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), 6u);  // a, 3x b, 2x value leaf
  // Both "hello" leaves carry the same bucket label.
  std::string expected = ValueBucketLabel("hello", options.value_buckets);
  LabelId value_label = doc->dict().Find(expected);
  ASSERT_NE(value_label, kInvalidLabel);
  LabelIndex index(*doc);
  EXPECT_EQ(index.Count(value_label), 2u);
}

TEST(XmlValueParsingTest, WhitespaceOnlyTextIgnored) {
  XmlParseOptions options;
  options.model_values = true;
  auto doc = ParseXmlString("<a>  \n\t  <b/>  </a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), 2u);
}

TEST(XmlValueParsingTest, MixedContentBucketsEachRun) {
  XmlParseOptions options;
  options.model_values = true;
  auto doc = ParseXmlString("<a>one<b/>two</a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumNodes(), 4u);  // a, =one, b, =two
}

TEST(XmlValueParsingTest, WriterDropsValueLeaves) {
  XmlParseOptions options;
  options.model_values = true;
  auto doc = ParseXmlString("<a><b>hello</b></a>", options);
  ASSERT_TRUE(doc.ok());
  std::string xml = WriteXmlString(*doc);
  auto reparsed = ParseXmlString(xml);  // without value modeling
  ASSERT_TRUE(reparsed.ok()) << xml;
  EXPECT_EQ(reparsed->NumNodes(), 2u);
}

TEST(XPathValueTest, PredicateCompilesToBucketLeaf) {
  LabelDict dict;
  auto twig = CompileXPath("movie[genre=\"action\"]", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  ASSERT_EQ(twig->size(), 3);
  std::string bucket = ValueBucketLabel("action", 64);
  EXPECT_NE(dict.Find(bucket), kInvalidLabel);
  EXPECT_EQ(twig->ToString(dict), "movie(genre(" + bucket + "))");
}

TEST(XPathValueTest, DotValueTest) {
  LabelDict dict;
  auto twig = CompileXPath("genre[.='drama']", &dict);
  ASSERT_TRUE(twig.ok()) << twig.status().ToString();
  EXPECT_EQ(twig->size(), 2);
  EXPECT_EQ(twig->label(1),
            dict.Find(ValueBucketLabel("drama", 64)));
}

TEST(XPathValueTest, CustomBucketCount) {
  LabelDict dict;
  XPathOptions options;
  options.value_buckets = 4;
  auto twig = CompileXPath("a[.=\"x\"]", &dict, options);
  ASSERT_TRUE(twig.ok());
  EXPECT_EQ(twig->label(1), dict.Find(ValueBucketLabel("x", 4)));
}

TEST(XPathValueTest, MalformedValueTestsRejected) {
  LabelDict dict;
  EXPECT_FALSE(CompileXPath("a[.=action]", &dict).ok());   // unquoted
  EXPECT_FALSE(CompileXPath("a[.=\"x]", &dict).ok());      // unterminated
  EXPECT_FALSE(CompileXPath("a[.x]", &dict).ok());         // junk after .
  EXPECT_FALSE(CompileXPath("a=", &dict).ok());            // missing literal
}

TEST(ValueEstimationTest, EndToEndValueSelectivity) {
  // 6 action movies, 2 dramas; value predicates must separate them.
  std::string xml = "<imdb>";
  for (int i = 0; i < 6; ++i) {
    xml += "<movie><genre>action</genre><year>1999</year></movie>";
  }
  for (int i = 0; i < 2; ++i) {
    xml += "<movie><genre>drama</genre><year>2001</year></movie>";
  }
  xml += "</imdb>";
  XmlParseOptions parse;
  parse.model_values = true;
  auto doc = ParseXmlString(xml, parse);
  ASSERT_TRUE(doc.ok());
  MatchCounter counter(*doc);
  auto dict = doc->shared_dict();

  auto action = CompileXPath("movie[genre=\"action\"]", dict.get());
  auto drama = CompileXPath("movie[genre=\"drama\"]", dict.get());
  ASSERT_TRUE(action.ok() && drama.ok());
  EXPECT_EQ(counter.Count(*action), 6u);
  EXPECT_EQ(counter.Count(*drama), 2u);

  // The lattice mines value leaves like any other label, so in-lattice
  // value queries are estimated exactly.
  LatticeBuildOptions build;
  build.max_level = 3;
  auto summary = BuildLattice(*doc, build);
  ASSERT_TRUE(summary.ok());
  RecursiveDecompositionEstimator estimator(&*summary);
  auto estimate = estimator.Estimate(*action);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 6.0);

  // Correlated value pair across branches, estimated by decomposition.
  auto correlated =
      CompileXPath("movie[genre=\"action\"][year=\"1999\"]", dict.get());
  ASSERT_TRUE(correlated.ok());
  EXPECT_EQ(counter.Count(*correlated), 6u);
  auto correlated_estimate = estimator.Estimate(*correlated);
  ASSERT_TRUE(correlated_estimate.ok());
  // Size-5 query over a 3-lattice: the genre and year values are
  // perfectly correlated, which the independence assumption cannot see —
  // the estimate lands between the independence value (4.5) and the truth
  // (6), never wildly off.
  EXPECT_GE(*correlated_estimate, 4.0);
  EXPECT_LE(*correlated_estimate, 6.5);
}

}  // namespace
}  // namespace treelattice
