// Query-plan selection with selectivity estimates — the paper's primary
// motivation. Given a complex twig query over an auction-site document,
// the optimizer decomposes it into candidate sub-twig "access paths",
// estimates each one's cardinality with TreeLattice, and orders evaluation
// from the most selective anchor outward (smallest intermediate results
// first), mirroring how a relational optimizer orders joins by estimated
// cardinality.
//
// Run: ./build/examples/query_optimizer

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "twig/twig.h"

using namespace treelattice;

namespace {

struct AccessPath {
  std::string description;
  Twig twig;
  double estimated_cardinality = 0.0;
};

}  // namespace

int main() {
  // Generate the XMark-like auction document and summarize it.
  DatasetOptions generate;
  generate.scale = 2000;
  Document doc = GenerateXmark(generate);
  std::printf("document: %zu elements\n", doc.NumNodes());

  LatticeBuildOptions options;
  options.max_level = 4;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  RecursiveDecompositionEstimator estimator(&*summary);
  LabelDict* dict = &doc.mutable_dict();

  // The user's query: open auctions that have a bidder with a recorded
  // time, a seller, and an annotation with a description.
  const char* query_text =
      "open_auction(bidder(date,time),seller,annotation(description))";
  Result<Twig> query = Twig::Parse(query_text, dict);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query_text);

  // Candidate access paths: each branch of the query evaluated first.
  std::vector<AccessPath> paths;
  auto add_path = [&](const char* what, const char* text) {
    Result<Twig> twig = Twig::Parse(text, dict);
    if (!twig.ok()) return;
    Result<double> estimate = estimator.Estimate(*twig);
    if (!estimate.ok()) return;
    paths.push_back({what, std::move(twig).value(), *estimate});
  };
  add_path("scan bidders with date+time", "bidder(date,time)");
  add_path("scan auction/seller edges", "open_auction(seller)");
  add_path("scan annotated auctions",
           "open_auction(annotation(description))");
  add_path("scan timed bidders under auctions",
           "open_auction(bidder(time))");

  std::sort(paths.begin(), paths.end(),
            [](const AccessPath& a, const AccessPath& b) {
              return a.estimated_cardinality < b.estimated_cardinality;
            });

  std::printf("candidate access paths (most selective first):\n");
  for (size_t i = 0; i < paths.size(); ++i) {
    std::printf("  %zu. %-40s est. cardinality %10.1f\n", i + 1,
                paths[i].description.c_str(),
                paths[i].estimated_cardinality);
  }

  Result<double> full_estimate = estimator.Estimate(*query);
  MatchCounter exact(doc);
  std::printf(
      "\nchosen plan: anchor on \"%s\", then join the remaining "
      "branches.\n",
      paths.front().description.c_str());
  std::printf("estimated result size: %.1f (true: %llu)\n",
              full_estimate.ok() ? *full_estimate : -1.0,
              static_cast<unsigned long long>(exact.Count(*query)));
  return 0;
}
