// Quickstart: parse an XML document, build a TreeLattice summary, and
// estimate the selectivity of twig queries — the library's core loop in
// ~60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/recursive_estimator.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "summary/lattice_summary.h"
#include "twig/twig.h"
#include "xml/parser.h"

using namespace treelattice;

int main() {
  // 1. Parse an XML document (structure only; text values are ignored).
  //    This is the paper's Figure 1 example: a small product catalog.
  const char* xml =
      "<computer>"
      "  <laptops>"
      "    <laptop><brand/><price/></laptop>"
      "    <laptop><brand/><price/></laptop>"
      "  </laptops>"
      "  <desktops>"
      "    <desktop><brand/></desktop>"
      "  </desktops>"
      "</computer>";
  Result<Document> doc = ParseXmlString(xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu elements, %zu distinct labels\n", doc->NumNodes(),
              doc->dict().size());

  // 2. Mine the lattice summary: occurrence counts of every twig pattern
  //    with up to 3 nodes.
  LatticeBuildOptions options;
  options.max_level = 3;
  Result<LatticeSummary> summary = BuildLattice(*doc, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "mining error: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("lattice summary: %zu patterns, %zu bytes\n",
              summary->NumPatterns(), summary->MemoryBytes());

  // 3. Estimate selectivities. Queries use the textual twig format
  //    "label(child,child(grandchild))".
  RecursiveDecompositionEstimator estimator(&*summary);
  MatchCounter exact(*doc);  // ground truth, for comparison

  for (const char* text :
       {"laptop", "laptop(brand,price)", "desktop(price)",
        "computer(laptops(laptop(brand)))"}) {
    Result<Twig> query = Twig::Parse(text, &doc->mutable_dict());
    if (!query.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", text,
                   query.status().ToString().c_str());
      return 1;
    }
    Result<double> estimate = estimator.Estimate(*query);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimation error: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-35s estimate=%6.2f  true=%llu\n", text, *estimate,
                static_cast<unsigned long long>(exact.Count(*query)));
  }
  return 0;
}
