// Summary tuning under a memory budget: the δ-derivable pruning workflow
// of Section 4.3. Builds a 4-lattice over a protein database, shows how
// much space 0-derivable pruning reclaims for free (Lemma 5), then trades
// accuracy for space with increasing δ, reporting measured error at each
// setting — everything a deployment needs to pick its operating point.
//
// Run: ./build/examples/summary_tuning

#include <cstdio>

#include "core/pruning.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "workload/workload.h"

using namespace treelattice;

int main() {
  DatasetOptions generate;
  generate.scale = 1200;
  Document doc = GeneratePsd(generate);
  std::printf("protein database: %zu elements\n", doc.NumNodes());

  LatticeBuildOptions options;
  options.max_level = 4;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("full 4-lattice: %zu patterns, %.1f KB\n\n",
              summary->NumPatterns(),
              double(summary->MemoryBytes()) / 1024.0);

  // A fixed evaluation workload with ground truth.
  MatchCounter counter(doc);
  WorkloadOptions workload_options;
  workload_options.query_size = 6;
  workload_options.num_queries = 80;
  Result<std::vector<Twig>> queries =
      GeneratePositiveWorkload(doc, workload_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  std::vector<double> truths;
  for (const Twig& q : *queries) {
    truths.push_back(static_cast<double>(counter.Count(q)));
  }
  double sanity = SanityBound(truths);

  auto evaluate = [&](const LatticeSummary& s) {
    RecursiveDecompositionEstimator estimator(&s);
    std::vector<double> errors;
    for (size_t i = 0; i < queries->size(); ++i) {
      Result<double> estimate = estimator.Estimate((*queries)[i]);
      errors.push_back(
          RelativeErrorPct(truths[i], estimate.ok() ? *estimate : 0, sanity));
    }
    return Mean(errors);
  };

  std::printf("%-12s %10s %10s %12s\n", "delta", "patterns", "size(KB)",
              "avg err(%)");
  std::printf("%-12s %10zu %10.1f %12.2f\n", "(unpruned)",
              summary->NumPatterns(), double(summary->MemoryBytes()) / 1024.0,
              evaluate(*summary));

  for (double delta : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    PruneOptions prune;
    prune.delta = delta;
    PruneStats stats;
    Result<LatticeSummary> pruned =
        PruneDerivablePatterns(*summary, prune, &stats);
    if (!pruned.ok()) {
      std::fprintf(stderr, "%s\n", pruned.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12.2f %10zu %10.1f %12.2f\n", delta,
                pruned->NumPatterns(), double(pruned->MemoryBytes()) / 1024.0,
                evaluate(*pruned));
  }
  std::printf(
      "\nNote: delta=0 reclaims space with *no* accuracy change (Lemma 5);\n"
      "larger delta trades accuracy for space.\n");
  return 0;
}
