// Explaining an estimate: compile an XPath query to a twig, estimate its
// selectivity, and print the decomposition trace showing exactly which
// lattice entries produced the number — the "EXPLAIN" of a cardinality
// estimator, useful when debugging optimizer plans.
//
// Run: ./build/examples/explain_estimate

#include <cstdio>

#include "core/explain.h"
#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "xpath/xpath.h"

using namespace treelattice;

int main() {
  DatasetOptions generate;
  generate.scale = 1500;
  Document doc = GenerateXmark(generate);
  std::printf("auction document: %zu elements\n", doc.NumNodes());

  LatticeBuildOptions options;
  options.max_level = 3;  // small lattice => deeper, more interesting traces
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("3-lattice: %zu patterns, %.1f KB\n\n", summary->NumPatterns(),
              double(summary->MemoryBytes()) / 1024.0);

  RecursiveDecompositionEstimator estimator(&*summary);
  MatchCounter exact(doc);

  for (const char* xpath :
       {"/open_auction[bidder/date][seller]",
        "item[payment][mailbox/mail]",
        "person[address/city][creditcard]"}) {
    Result<Twig> query = CompileXPath(xpath, &doc.mutable_dict());
    if (!query.ok()) {
      std::fprintf(stderr, "%s: %s\n", xpath,
                   query.status().ToString().c_str());
      return 1;
    }
    Result<double> estimate = estimator.Estimate(*query);
    Result<std::unique_ptr<ExplainNode>> trace =
        ExplainEstimate(*summary, *query, doc.dict());
    if (!estimate.ok() || !trace.ok()) {
      std::fprintf(stderr, "estimation failed for %s\n", xpath);
      return 1;
    }
    std::printf("XPath:    %s\n", xpath);
    std::printf("estimate: %.2f   true: %llu\n", *estimate,
                static_cast<unsigned long long>(exact.Count(*query)));
    std::printf("%s\n", RenderExplain(**trace).c_str());
  }
  return 0;
}
