// Approximate COUNT answering and interactive query refinement — the
// paper's second motivating scenario. An analyst explores a movie
// database; every query is first answered *approximately* from the
// summary (microseconds, no document access). Queries predicted to return
// overwhelming results get a refinement warning; the analyst narrows the
// twig until the predicted result set is manageable, and only then runs
// the exact (expensive) count. The summary is also persisted and reloaded
// to show that estimation needs no access to the original document.
//
// Run: ./build/examples/approximate_count

#include <cstdio>
#include <string>

#include "core/recursive_estimator.h"
#include "datagen/datasets.h"
#include "match/matcher.h"
#include "mining/lattice_builder.h"
#include "util/timer.h"

using namespace treelattice;

int main() {
  DatasetOptions generate;
  generate.scale = 3000;
  Document doc = GenerateImdb(generate);
  std::printf("movie database: %zu elements\n", doc.NumNodes());

  LatticeBuildOptions options;
  options.max_level = 4;
  Result<LatticeSummary> summary = BuildLattice(doc, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }

  // Persist the summary and reload it — the estimator below never touches
  // the document again.
  const std::string path = "/tmp/treelattice_imdb.summary";
  if (Status s = summary->SaveToFile(path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<LatticeSummary> loaded = LatticeSummary::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("summary persisted and reloaded: %zu patterns, %zu bytes\n\n",
              loaded->NumPatterns(), loaded->MemoryBytes());

  RecursiveDecompositionEstimator::Options voting;
  voting.voting = true;
  RecursiveDecompositionEstimator estimator(&*loaded, voting);
  MatchCounter exact(doc);
  LabelDict* dict = &doc.mutable_dict();

  const double kOverwhelming = 2000.0;

  // The analyst's refinement session: from a broad query to a precise one.
  const char* session[] = {
      "movie(cast(actor))",
      "movie(cast(actor(role)))",
      "movie(cast(actor(role)),business)",
      "movie(cast(actor(role)),business(opening),awards)",
  };

  for (const char* text : session) {
    Result<Twig> query = Twig::Parse(text, dict);
    if (!query.ok()) {
      std::fprintf(stderr, "bad query: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    Result<double> estimate = estimator.Estimate(*query);
    double micros = timer.ElapsedMicros();
    if (!estimate.ok()) {
      std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
      return 1;
    }
    std::printf("Q: %s\n", text);
    std::printf("   approx COUNT = %.0f   (estimated in %.0f us)\n",
                *estimate, micros);
    if (*estimate > kOverwhelming) {
      std::printf("   -> predicted to be overwhelming; refine the query\n\n");
      continue;
    }
    WallTimer exact_timer;
    unsigned long long truth = exact.Count(*query);
    std::printf("   -> small enough; exact COUNT = %llu (%.1f ms)\n\n",
                truth, exact_timer.ElapsedMillis());
  }
  return 0;
}
